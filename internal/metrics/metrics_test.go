package metrics

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	var r Recorder
	if r.Avg() != 0 || r.Percentile(50) != 0 || r.Count() != 0 {
		t.Error("empty recorder not zero-valued")
	}
	for _, d := range []time.Duration{30, 10, 20} {
		r.Add(d * time.Millisecond)
	}
	if r.Count() != 3 {
		t.Errorf("count = %d", r.Count())
	}
	if r.Avg() != 20*time.Millisecond {
		t.Errorf("avg = %v", r.Avg())
	}
	if r.Min() != 10*time.Millisecond || r.Max() != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Percentile(50) != 20*time.Millisecond {
		t.Errorf("p50 = %v", r.Percentile(50))
	}
}

func TestRecorderAddAfterPercentile(t *testing.T) {
	var r Recorder
	r.Add(10)
	r.Percentile(50) // sorts
	r.Add(5)         // must invalidate sort
	if r.Min() != 5 {
		t.Errorf("min after late add = %v", r.Min())
	}
}

// TestPercentileNearestRankProperty: percentiles are monotone in p, bounded
// by min and max, and p100 is the max.
func TestPercentileProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var r Recorder
		for _, s := range samples {
			r.Add(time.Duration(s))
		}
		prev := time.Duration(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			v := r.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]uint16(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return r.Percentile(100) == time.Duration(sorted[len(sorted)-1]) &&
			r.Percentile(0) == time.Duration(sorted[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundaries(t *testing.T) {
	var empty Recorder
	for _, p := range []float64{0, 50, 100} {
		if empty.Percentile(p) != 0 {
			t.Errorf("empty recorder p%v = %v, want 0", p, empty.Percentile(p))
		}
	}
	var one Recorder
	one.Add(7 * time.Millisecond)
	for _, p := range []float64{0, 0.001, 50, 100, 250} {
		if one.Percentile(p) != 7*time.Millisecond {
			t.Errorf("single-sample p%v = %v, want 7ms", p, one.Percentile(p))
		}
	}
	var r Recorder
	for _, d := range []time.Duration{30, 10, 20} {
		r.Add(d * time.Millisecond)
	}
	// p=0 is documented as the minimum (what Min delegates to), p=100 the
	// maximum, and out-of-range p clamps rather than panicking.
	if r.Percentile(0) != 10*time.Millisecond {
		t.Errorf("p0 = %v, want min 10ms", r.Percentile(0))
	}
	if r.Percentile(-5) != 10*time.Millisecond {
		t.Errorf("p-5 = %v, want min 10ms", r.Percentile(-5))
	}
	if r.Percentile(100) != 30*time.Millisecond {
		t.Errorf("p100 = %v, want max 30ms", r.Percentile(100))
	}
	if r.Percentile(200) != 30*time.Millisecond {
		t.Errorf("p200 = %v, want max 30ms", r.Percentile(200))
	}
}

func TestRecorderMergeAndReset(t *testing.T) {
	var a, b Recorder
	a.Add(10 * time.Millisecond)
	a.Add(20 * time.Millisecond)
	a.Percentile(50) // sorts a; Merge must invalidate the sort
	b.Add(5 * time.Millisecond)
	b.Add(40 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if a.Min() != 5*time.Millisecond || a.Max() != 40*time.Millisecond {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	// The source recorder is unchanged.
	if b.Count() != 2 || b.Min() != 5*time.Millisecond {
		t.Errorf("merge mutated source: count=%d min=%v", b.Count(), b.Min())
	}
	// Merging nil and empty recorders is a no-op.
	a.Merge(nil)
	a.Merge(&Recorder{})
	if a.Count() != 4 {
		t.Errorf("no-op merges changed count to %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 || a.Avg() != 0 || a.Percentile(50) != 0 {
		t.Error("reset did not empty the recorder")
	}
	a.Add(3 * time.Millisecond)
	if a.Count() != 1 || a.Min() != 3*time.Millisecond {
		t.Error("recorder unusable after reset")
	}
}

func TestSummaryFormat(t *testing.T) {
	var r Recorder
	r.Add(6400 * time.Microsecond)
	s := r.Summary()
	for _, want := range []string{"avg", "50%", "99%", "6.40ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "Demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "2")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== Demo ==", "a note", "name", "a-much-longer-name"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and rows must align: the value column starts at the same
	// offset everywhere.
	hdr := -1
	for _, l := range lines[2:] {
		i := strings.Index(l, "1")
		if i < 0 {
			continue
		}
		if hdr == -1 {
			hdr = i
		}
	}
	if hdr == -1 {
		t.Fatalf("row not found in output:\n%s", out)
	}
}

func TestTableRowWiderThanHeader(t *testing.T) {
	tab := &Table{Header: []string{"a"}}
	tab.AddRow("x", "overflow-cell") // more cells than header
	var buf bytes.Buffer
	tab.Fprint(&buf) // must not panic
	if !strings.Contains(buf.String(), "overflow-cell") {
		t.Error("extra cell dropped")
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{25 * time.Millisecond, "25.00ms"},
		{42 * time.Microsecond, "42.0us"},
	}
	for _, c := range cases {
		if got := FmtDur(c.d); got != c.want {
			t.Errorf("FmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	if FmtRatio(2.5) != "2.50x" {
		t.Error("FmtRatio broken")
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{Title: "MD", Note: "note", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.Markdown(&buf)
	out := buf.String()
	for _, want := range []string{"### MD", "*note*", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
