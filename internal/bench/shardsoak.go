package bench

// Sharded-kernel soak: the scaling workload behind BENCH_sim.json.
//
// The workload simulates M machines, each with a driver that performs a
// stream of invocations (a service-time Sleep per invocation) and forwards
// every sendEvery-th result to the next machine over a cross-machine
// interconnect.
// The service times are coupled — each machine's next service time depends on
// how many messages it has received so far — so the machines cannot be
// simulated independently: the experiment only makes sense if cross-machine
// messages arrive exactly when they should.
//
// Every sweep point runs the *same* workload, only partitioned differently:
// shards=1 puts all machines in one domain (one event heap — the classic
// monolithic kernel's behavior), shards=N spreads machines over N domains
// driven by N OS workers under the conservative windowed driver, with the
// interconnect's base latency as the lookahead. The sweep verifies every
// point produces the identical fingerprint (per-machine counters, total
// scheduled events, final virtual clock) before reporting throughput, so the
// speedup column can never come from a divergent simulation.
//
// All event timestamps are residue-quantized (see quantum below) so no two
// machines ever act at the same virtual instant; the global event order is
// therefore a total order shared by every partitioning, which is what makes
// the fingerprint — and the full event trace — partition-invariant.

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// sendEvery is the cross-machine fanout: every sendEvery-th invocation
// forwards its result to the next machine. It sets the density of pending
// arrivals in each domain's heap, which is what decides how often a
// machine's Sleep can take the lone-sleeper fast path.
const sendEvery = 6

// ShardSoakConfig parameterizes one soak run.
type ShardSoakConfig struct {
	Machines    int // simulated machines (each one driver proc)
	Invocations int // invocations per machine
	Shards      int // event-heap domains; machines are dealt round-robin
	Workers     int // OS workers driving the domains; 0 = Shards

	// Telemetry, when non-nil, is attached as the kernel's window observer
	// and accumulates round/stall/flow counters over the run. Attach it to
	// a dedicated run, not the timed sweep points — observation is cheap
	// but not free, and BENCH_sim.json throughput should stay clean.
	Telemetry *obs.WindowTelemetry
}

// ShardSoakResult is one sweep point, serialized into BENCH_sim.json.
type ShardSoakResult struct {
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	Machines     int     `json:"machines"`
	Invocations  int     `json:"invocations_per_machine"`
	Events       int64   `json:"events"`
	WallMS       float64 `json:"wall_ms"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_shards1"` // filled by ShardSoakSweep
	Fingerprint  string  `json:"fingerprint"`
}

// ShardSoak runs one soak configuration and reports its throughput and
// fingerprint. It fails if any cross-machine message is lost or if messages
// arrive out of (virtual-time) order at any machine — the zero-lost-work and
// monotone-clock invariants the long soak test leans on.
func ShardSoak(cfg ShardSoakConfig) (ShardSoakResult, error) {
	m := cfg.Machines
	if m < 2 {
		return ShardSoakResult{}, fmt.Errorf("shard soak needs at least 2 machines, got %d", m)
	}
	if cfg.Shards < 1 || cfg.Shards > m {
		return ShardSoakResult{}, fmt.Errorf("shards must be in [1,%d], got %d", m, cfg.Shards)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = cfg.Shards
	}

	// Residue quantum: machine i's own events land at times ≡ i+1 (mod q),
	// arrivals at machine k land at times ≡ m+k+2 (mod q). All residues are
	// distinct and nonzero, so after the t=0 spawns no two machines ever act
	// at the same instant, in any partitioning.
	q := time.Duration(2*m + 2)
	// The link latency is the lookahead, i.e. the window width: at ~600ns·q
	// mean service time, 4000·q gives each machine dozens of fast-path
	// events per conservative barrier, so barrier cost stays in the noise.
	link := hw.Link{Kind: hw.LinkNetwork, BaseLat: 4000 * q} // ≡ 0 (mod q)

	sh := sim.NewSharded(cfg.Shards)
	if cfg.Telemetry != nil {
		sh.SetWindowObserver(cfg.Telemetry)
	}
	ic := hw.NewInterconnect(sh, link)
	dom := func(machine int) int { return machine % cfg.Shards }

	inv := make([]int, m)       // invocations completed per machine
	recv := make([]int, m)      // messages received per machine
	sent := make([]int, m)      // messages sent per machine
	last := make([]sim.Time, m) // last arrival time per machine (monotonicity)
	var arriveErr error

	for i := 0; i < m; i++ {
		machine := i
		env := sh.Domain(dom(machine))
		next := (machine + 1) % m
		nextEnv := sh.Domain(dom(next))
		// Delay residue that lands the arrival in machine `next`'s arrival
		// class given the sender's clock residue of machine+1.
		extra := ((time.Duration(m+next+2-(machine+1)))%q + q) % q
		env.Spawn(fmt.Sprintf("driver-%d", machine), func(p *sim.Proc) {
			p.Sleep(time.Duration(machine + 1)) // enter the residue class
			for n := 0; n < cfg.Invocations; n++ {
				// Coupled service time: depends on messages received so
				// far, so mis-delivered messages change the fingerprint.
				p.Sleep(q * time.Duration(50+n%7+3*(recv[machine]%5)))
				inv[machine]++
				if n%sendEvery == 0 {
					sent[machine]++
					//lint:owned soak assertion state: last/recv slots for machine `next` are written only by deliveries on next's own domain, and the cross-worker fingerprint check enforces exactly that discipline
					ic.SendAfter(p.Env(), dom(next), 0, extra, func() {
						at := nextEnv.Now()
						if at < last[next] {
							arriveErr = fmt.Errorf("machine %d clock ran backwards: arrival at %d after %d", next, at, last[next])
						}
						last[next] = at
						recv[next]++
					})
				}
			}
		})
	}

	start := time.Now()
	sh.Run(workers)
	wall := time.Since(start)

	if arriveErr != nil {
		return ShardSoakResult{}, arriveErr
	}
	wantRecv := (cfg.Invocations + sendEvery - 1) / sendEvery // sends: n%sendEvery==0, n<Invocations
	for k := 0; k < m; k++ {
		if inv[k] != cfg.Invocations {
			return ShardSoakResult{}, fmt.Errorf("machine %d completed %d/%d invocations", k, inv[k], cfg.Invocations)
		}
		if recv[k] != wantRecv {
			return ShardSoakResult{}, fmt.Errorf("machine %d lost messages: received %d, want %d", k, recv[k], wantRecv)
		}
	}

	events := sh.Scheduled()
	res := ShardSoakResult{
		Shards:       cfg.Shards,
		Workers:      workers,
		Machines:     m,
		Invocations:  cfg.Invocations,
		Events:       events,
		WallMS:       float64(wall.Nanoseconds()) / 1e6,
		EventsPerSec: float64(events) / wall.Seconds(),
		Fingerprint:  fmt.Sprintf("inv=%v recv=%v sent=%v events=%d now=%d", inv, recv, sent, events, sh.Now()),
	}
	return res, nil
}

// ShardSoakSweep runs the soak at each shard count and verifies that every
// point produced the bit-identical fingerprint before computing speedups
// relative to the shards=1 (monolithic heap) point, which must be first.
func ShardSoakSweep(machines, invocations int, shardCounts []int) ([]ShardSoakResult, error) {
	if len(shardCounts) == 0 || shardCounts[0] != 1 {
		return nil, fmt.Errorf("sweep must start at shards=1 (the monolithic baseline), got %v", shardCounts)
	}
	out := make([]ShardSoakResult, 0, len(shardCounts))
	for _, s := range shardCounts {
		r, err := ShardSoak(ShardSoakConfig{Machines: machines, Invocations: invocations, Shards: s})
		if err != nil {
			return nil, fmt.Errorf("shards=%d: %w", s, err)
		}
		if len(out) > 0 && r.Fingerprint != out[0].Fingerprint {
			return nil, fmt.Errorf("shards=%d diverged:\n  got  %s\n  want %s", s, r.Fingerprint, out[0].Fingerprint)
		}
		out = append(out, r)
	}
	base := out[0].EventsPerSec
	for i := range out {
		out[i].Speedup = out[i].EventsPerSec / base
	}
	return out, nil
}

// ShardSoakTable renders a sweep as a report table.
func ShardSoakTable(results []ShardSoakResult) *metrics.Table {
	t := &metrics.Table{
		Title:  "Sharded kernel soak — events/sec vs shard count",
		Note:   fmt.Sprintf("%d machines x %d invocations, identical fingerprint at every point", results[0].Machines, results[0].Invocations),
		Header: []string{"shards", "workers", "events", "wall ms", "events/sec", "speedup"},
	}
	for _, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fr(r.Speedup),
		)
	}
	return t
}
