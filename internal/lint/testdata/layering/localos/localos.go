package localos

import "repro/internal/sim"

// A level-2 package importing level 0 descends the table: no diagnostic.
func use() { sim.Noop() }
