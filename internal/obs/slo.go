package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// SLOConfig is one latency objective: at least Target of requests must
// complete within Objective.
type SLOConfig struct {
	Objective time.Duration
	Target    float64 // attainment target in (0, 1], e.g. 0.999
}

// sloSeries is the per-function objective state: request/violation counts
// plus the full latency sketch.
type sloSeries struct {
	cfg    SLOConfig
	hasCfg bool // explicit objective vs. engine default
	total  int64
	good   int64
	sketch Sketch
}

// SLOEngine tracks per-deployment latency objectives over virtual time:
// attainment, error-budget burn, and deterministic quantile sketches. It is
// the scoring function for policy comparison — two runs (or two shards of
// one run, via Merge) produce byte-identical WriteJSON output for the same
// observed latencies. A nil *SLOEngine no-ops; Observer.RecordSLO guards it
// so the detached fast path stays allocation-free.
type SLOEngine struct {
	def    SLOConfig
	series map[string]*sloSeries
}

// NewSLOEngine returns an engine applying def to every function that has no
// explicit objective.
func NewSLOEngine(def SLOConfig) *SLOEngine {
	return &SLOEngine{def: def, series: make(map[string]*sloSeries)}
}

// SetObjective sets fn's latency objective, replacing the default.
// Nil-safe.
func (e *SLOEngine) SetObjective(fn string, cfg SLOConfig) {
	if e == nil {
		return
	}
	s := e.get(fn)
	s.cfg = cfg
	s.hasCfg = true
}

// Objective returns fn's effective objective.
func (e *SLOEngine) Objective(fn string) SLOConfig {
	if e == nil {
		return SLOConfig{}
	}
	if s, ok := e.series[fn]; ok && s.hasCfg {
		return s.cfg
	}
	return e.def
}

func (e *SLOEngine) get(fn string) *sloSeries {
	s, ok := e.series[fn]
	if !ok {
		s = &sloSeries{cfg: e.def}
		e.series[fn] = s
	}
	return s
}

// Record feeds one settled invocation's end-to-end latency. Nil-safe.
func (e *SLOEngine) Record(fn string, d time.Duration) {
	if e == nil {
		return
	}
	s := e.get(fn)
	s.total++
	if d <= s.cfg.Objective {
		s.good++
	}
	s.sketch.Observe(d)
}

// Merge folds other's counts and sketches into e (per-shard engines
// rolling up to one). Objectives must agree where both sides configured
// the same function; other's explicit objectives win on functions e only
// tracked by default. Nil-safe on both sides.
func (e *SLOEngine) Merge(other *SLOEngine) {
	if e == nil || other == nil {
		return
	}
	names := make([]string, 0, len(other.series))
	for fn := range other.series { //lint:unordered collected then sorted below
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		os := other.series[fn]
		s := e.get(fn)
		if os.hasCfg && !s.hasCfg {
			s.cfg, s.hasCfg = os.cfg, true
		}
		s.total += os.total
		s.good += os.good
		s.sketch.Merge(&os.sketch)
	}
}

// SLOStatus is one function's scored objective, the unit of the /slo JSON
// view and of the policy tournament's scoring.
type SLOStatus struct {
	Fn          string  `json:"fn"`
	ObjectiveMS float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	Requests    int64   `json:"requests"`
	Violations  int64   `json:"violations"`
	Attainment  float64 `json:"attainment"`
	// BurnRate is the error-budget burn: the violation rate divided by the
	// budgeted violation rate (1 - target). 1.0 burns the budget exactly;
	// above 1 the objective is being missed.
	BurnRate float64 `json:"error_budget_burn"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Status returns every tracked function's scored objective, sorted by
// function name.
func (e *SLOEngine) Status() []SLOStatus {
	if e == nil {
		return nil
	}
	names := make([]string, 0, len(e.series))
	for fn := range e.series { //lint:unordered collected then sorted below
		names = append(names, fn)
	}
	sort.Strings(names)
	out := make([]SLOStatus, 0, len(names))
	for _, fn := range names {
		s := e.series[fn]
		st := SLOStatus{
			Fn:          fn,
			ObjectiveMS: msf(s.cfg.Objective),
			Target:      s.cfg.Target,
			Requests:    s.total,
			Violations:  s.total - s.good,
			P50MS:       msf(s.sketch.Quantile(0.50)),
			P90MS:       msf(s.sketch.Quantile(0.90)),
			P99MS:       msf(s.sketch.Quantile(0.99)),
			MaxMS:       msf(s.sketch.Max()),
		}
		if s.total > 0 {
			st.Attainment = float64(s.good) / float64(s.total)
			if budget := 1 - s.cfg.Target; budget > 0 {
				st.BurnRate = (1 - st.Attainment) / budget
			}
		}
		out = append(out, st)
	}
	return out
}

// sloView is the WriteJSON document.
type sloView struct {
	Default struct {
		ObjectiveMS float64 `json:"objective_ms"`
		Target      float64 `json:"target"`
	} `json:"default"`
	Functions []SLOStatus `json:"functions"`
}

// WriteJSON renders the engine as the GET /slo document: the default
// objective plus every function's status, sorted by name — deterministic
// byte-for-byte for a given observation multiset. Nil-safe (writes an
// empty document).
func (e *SLOEngine) WriteJSON(w io.Writer) error {
	var v sloView
	v.Functions = []SLOStatus{}
	if e != nil {
		v.Default.ObjectiveMS = msf(e.def.Objective)
		v.Default.Target = e.def.Target
		v.Functions = e.Status()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&v)
}

// Export mirrors the engine into a metrics registry as gauge families
// (slo_requests, slo_violations, slo_attainment_ratio,
// slo_error_budget_burn, labeled by fn), so /metrics scrapes see SLO state
// alongside the raw counters. Call before rendering; values are replaced,
// never accumulated. Nil-safe.
func (e *SLOEngine) Export(r *Registry) {
	if e == nil || r == nil {
		return
	}
	r.SetHelp("slo_requests", "Invocations scored against the function's latency objective.")
	r.SetHelp("slo_violations", "Invocations that missed the function's latency objective.")
	r.SetHelp("slo_attainment_ratio", "Fraction of invocations meeting the objective.")
	r.SetHelp("slo_error_budget_burn", "Violation rate over budgeted rate (1-target); >1 is out of budget.")
	for _, st := range e.Status() {
		fl := L("fn", st.Fn)
		r.Gauge("slo_requests", fl).Set(float64(st.Requests))
		r.Gauge("slo_violations", fl).Set(float64(st.Violations))
		r.Gauge("slo_attainment_ratio", fl).Set(st.Attainment)
		r.Gauge("slo_error_budget_burn", fl).Set(st.BurnRate)
	}
}
