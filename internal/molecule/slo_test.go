package molecule

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func deployEverywhere(t *testing.T, p *sim.Proc, rt *Runtime, fn string) {
	t.Helper()
	if err := rt.Deploy(p, fn,
		DefaultProfile(hw.CPU), DefaultProfile(hw.DPU),
		DefaultProfile(hw.FPGA), DefaultProfile(hw.GPU)); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateLatencyOrdering(t *testing.T) {
	run(t, hw.Config{DPUs: 1, FPGAs: 1, GPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		deployEverywhere(t, p, rt, "vmult")
		// Warm everything so estimates reflect steady state.
		for _, pu := range rt.Machine.PUs() {
			rt.Invoke(p, "vmult", InvokeOptions{PU: pu.ID})
		}
		est := func(k hw.PUKind) time.Duration {
			e, err := rt.EstimateLatency("vmult", k, workloads.Arg{})
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		cpu, dpu, fpga, gpu := est(hw.CPU), est(hw.DPU), est(hw.FPGA), est(hw.GPU)
		if !(dpu > cpu && cpu > fpga && fpga > gpu) {
			t.Errorf("estimate ordering wrong: cpu=%v dpu=%v fpga=%v gpu=%v", cpu, dpu, fpga, gpu)
		}
		if _, err := rt.EstimateLatency("vmult", hw.SmartSSD, workloads.Arg{}); err == nil {
			t.Error("estimate for unprofiled kind succeeded")
		}
		if _, err := rt.EstimateLatency("nope", hw.CPU, workloads.Arg{}); err == nil {
			t.Error("estimate for undeployed function succeeded")
		}
	})
}

func TestEstimateColdVsWarm(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		cold, _ := rt.EstimateLatency("matmul", hw.CPU, workloads.Arg{})
		rt.Invoke(p, "matmul", DefaultInvokeOptions())
		warm, _ := rt.EstimateLatency("matmul", hw.CPU, workloads.Arg{})
		if warm >= cold {
			t.Errorf("warm estimate (%v) not below cold (%v)", warm, cold)
		}
	})
}

// TestInvokeWithSLO: a loose deadline picks the cheap DPU; a tight one
// forces the faster (pricier) CPU; an infeasible one falls back to the
// fastest profile.
func TestInvokeWithSLO(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes",
			DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		// Warm both PUs so estimates are steady-state: CPU ~20ms, DPU ~123ms.
		rt.Invoke(p, "pyaes", InvokeOptions{PU: 0})
		rt.Invoke(p, "pyaes", InvokeOptions{PU: dpu})

		// Rate objective: the low-rate DPU wins under a loose deadline.
		res, kind, est, err := rt.InvokeWithSLO(p, "pyaes",
			SLOOptions{Deadline: 500 * time.Millisecond, Objective: MinimizeRate})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.DPU || res.Kind != hw.DPU {
			t.Errorf("loose deadline (rate objective) picked %v (est %v), want cheap DPU", kind, est)
		}

		// Charge objective: the CPU finishes 6.3x sooner at only 1.67x the
		// rate, so its total charge is lower.
		_, kind, _, err = rt.InvokeWithSLO(p, "pyaes",
			SLOOptions{Deadline: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.CPU {
			t.Errorf("loose deadline (charge objective) picked %v, want CPU", kind)
		}

		res, kind, _, err = rt.InvokeWithSLO(p, "pyaes", SLOOptions{Deadline: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.CPU || res.Kind != hw.CPU {
			t.Errorf("tight deadline picked %v, want CPU", kind)
		}

		// Infeasible: best effort = fastest.
		_, kind, _, err = rt.InvokeWithSLO(p, "pyaes", SLOOptions{Deadline: time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.CPU {
			t.Errorf("infeasible deadline picked %v, want fastest (CPU)", kind)
		}

		// No deadline with the rate objective: cheapest rate outright.
		_, kind, _, err = rt.InvokeWithSLO(p, "pyaes", SLOOptions{Objective: MinimizeRate})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.DPU {
			t.Errorf("no deadline picked %v, want cheapest rate (DPU)", kind)
		}
	})
}

func TestInvokeWithSLOAcceleratorWins(t *testing.T) {
	run(t, hw.Config{FPGAs: 1}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "gzip-compression",
			DefaultProfile(hw.CPU), DefaultProfile(hw.FPGA)); err != nil {
			t.Fatal(err)
		}
		// 50MB gzip: CPU needs ~2.2s; only the FPGA meets a 1s deadline.
		arg := workloads.Arg{Bytes: 50 << 20}
		res, kind, est, err := rt.InvokeWithSLO(p, "gzip-compression",
			SLOOptions{Deadline: time.Second, Arg: arg})
		if err != nil {
			t.Fatal(err)
		}
		if kind != hw.FPGA || res.Kind != hw.FPGA {
			t.Errorf("picked %v (est %v), want FPGA for the deadline", kind, est)
		}
	})
}

func TestInvokeWithSLOUndeployed(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, _, _, err := rt.InvokeWithSLO(p, "nope", SLOOptions{}); err == nil {
			t.Error("SLO invoke of undeployed function succeeded")
		}
	})
}
