package lint

import (
	"slices"
	"strconv"

	"golang.org/x/tools/go/analysis"
)

// Layering enforces the import DAG recorded in Table. Two rules, both pure
// data:
//
//  1. A package may import only internal packages at a strictly lower
//     Level, so layer inversions (and therefore cycles) cannot compile into
//     the tree unnoticed.
//  2. A package must not import anything on its Deny list even when the
//     levels would allow it. The base layers (sim, hw, localos, sandbox,
//     xpu, mem) deny faults, obs, molecule, and bench: those subsystems are
//     injected consumer-side through interfaces (hw.FaultInjector,
//     sandbox.FaultInjector, xpu.MetricSink, ...) precisely so that
//     detaching them keeps the simulation byte-identical.
//
// A package missing from the table is itself a violation — new packages are
// classified before they are imported, not after.
var Layering = &analysis.Analyzer{
	Name: "layering",
	Doc:  "enforce the internal/ import DAG recorded in the moleculelint layer table (internal/lint/layers.go)",
	Run:  runLayering,
}

func runLayering(pass *analysis.Pass) (interface{}, error) {
	rel, internal := relInternal(pass.Pkg.Path())
	if !internal {
		return nil, nil
	}
	layer, known := Table[rel]
	if !known {
		if len(pass.Files) > 0 {
			pass.Reportf(pass.Files[0].Name.Pos(),
				"package %s is not in the moleculelint layer table: classify it in internal/lint/layers.go (Level, Sim, Report) before it grows imports",
				pass.Pkg.Path())
		}
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			impRel, impInternal := relInternal(path)
			if !impInternal {
				continue
			}
			if slices.Contains(layer.Deny, impRel) {
				pass.Reportf(imp.Pos(),
					"layering: base layer %s must not import %s; inject it consumer-side through an interface (see hw.FaultInjector / xpu.MetricSink)",
					rel, impRel)
				continue
			}
			impLayer, impKnown := Table[impRel]
			if !impKnown {
				pass.Reportf(imp.Pos(),
					"layering: import of %s, which is not in the moleculelint layer table (internal/lint/layers.go)",
					path)
				continue
			}
			if impLayer.Level >= layer.Level {
				pass.Reportf(imp.Pos(),
					"layering: %s (level %d) must not import %s (level %d); imports must descend the layer table",
					rel, layer.Level, impRel, impLayer.Level)
			}
		}
	}
	return nil, nil
}
