package lint

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// Every package under internal/ must have a layer table entry, and every
// entry must name a package that still exists — the table cannot rot in
// either direction.
func TestLayerTableCoversInternalTree(t *testing.T) {
	root := ".." // this test runs in internal/lint
	found := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if rel != "." {
			found[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("walked no Go packages under internal/ — wrong working directory?")
	}
	for pkg := range found {
		if _, ok := Table[pkg]; !ok {
			t.Errorf("internal/%s has Go files but no layer table entry; classify it in internal/lint/layers.go", pkg)
		}
	}
	for pkg := range Table {
		if !found[pkg] {
			t.Errorf("layer table entry %q names no package under internal/; delete or fix it", pkg)
		}
	}
}
