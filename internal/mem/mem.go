// Package mem implements the page-granular memory model used by the
// simulated operating systems.
//
// Address spaces map page numbers to physical pages. Fork shares every page
// copy-on-write, exactly like Unix: the page's reference count rises, and the
// first write by either side breaks the sharing by allocating a private copy.
// The model exists to reproduce the paper's Fig 11b/c memory results: cfork'd
// instances share template pages, so their PSS (proportional set size) is
// lower than plainly-booted instances even though RSS (resident set size)
// can be slightly higher due to the template's own footprint.
package mem

// Page is a physical page shared by one or more address spaces.
type Page struct {
	refs int
}

// AddressSpace is a process's page table: a map from virtual page number to
// the physical page backing it.
type AddressSpace struct {
	pages map[int]*Page
	next  int // next unused virtual page number for Map allocations
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[int]*Page)}
}

// Map allocates n fresh private pages and returns the first virtual page
// number of the contiguous run.
func (as *AddressSpace) Map(n int) int {
	start := as.next
	for i := 0; i < n; i++ {
		as.pages[as.next] = &Page{refs: 1}
		as.next++
	}
	return start
}

// Unmap releases n pages starting at virtual page vpn. Unmapping a hole is
// a no-op for the missing pages.
func (as *AddressSpace) Unmap(vpn, n int) {
	for i := 0; i < n; i++ {
		if pg, ok := as.pages[vpn+i]; ok {
			pg.refs--
			delete(as.pages, vpn+i)
		}
	}
}

// Fork returns a copy-on-write clone: every page is shared with the parent
// and each side's first write will privatize its copy.
func (as *AddressSpace) Fork() *AddressSpace {
	child := &AddressSpace{pages: make(map[int]*Page, len(as.pages)), next: as.next}
	for vpn, pg := range as.pages {
		pg.refs++
		child.pages[vpn] = pg
	}
	return child
}

// Write dirties n pages starting at vpn, breaking copy-on-write sharing.
// It returns the number of pages that were actually copied (i.e. the number
// of COW faults), which the OS model converts into fault latency.
func (as *AddressSpace) Write(vpn, n int) int {
	faults := 0
	for i := 0; i < n; i++ {
		pg, ok := as.pages[vpn+i]
		if !ok {
			// Write to an unmapped page allocates it (demand paging).
			as.pages[vpn+i] = &Page{refs: 1}
			if vpn+i >= as.next {
				as.next = vpn + i + 1
			}
			faults++
			continue
		}
		if pg.refs > 1 {
			pg.refs--
			as.pages[vpn+i] = &Page{refs: 1}
			faults++
		}
	}
	return faults
}

// Release drops every page mapping, decrementing shared reference counts.
// The address space is empty (but reusable) afterwards.
func (as *AddressSpace) Release() {
	for vpn, pg := range as.pages {
		pg.refs--
		delete(as.pages, vpn)
	}
}

// RSSPages returns the resident set size in pages: every page mapped into
// this address space, shared or not.
func (as *AddressSpace) RSSPages() int { return len(as.pages) }

// PSSPages returns the proportional set size in pages: each page counts
// 1/refs, so shared pages are split among their sharers — the metric the
// paper uses to show cfork's memory savings (Fig 11c).
func (as *AddressSpace) PSSPages() float64 {
	var pss float64
	for _, pg := range as.pages {
		pss += 1.0 / float64(pg.refs)
	}
	return pss
}

// SharedPages returns the number of mapped pages with more than one
// reference.
func (as *AddressSpace) SharedPages() int {
	n := 0
	for _, pg := range as.pages {
		if pg.refs > 1 {
			n++
		}
	}
	return n
}
