package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// acquireVerbs / releaseVerbs name the method shapes that smell like
// resource acquisition or disposal in the table-covered packages. Growing a
// new method that matches one of these means either adding a ReleaseTable
// pairing or renaming the method — the table must not silently fall behind
// the API.
var (
	acquireVerbs = regexp.MustCompile(`^(acquire|Acquire[A-Z]\w*|Pin|Fork)$`)
	releaseVerbs = regexp.MustCompile(`^(release|destroy|Release[A-Z]\w*|Unpin)$`)
)

// methodsIn syntax-parses every non-test .go file under dir and returns the
// set of "Type.Method" strings for methods with named receivers.
func methodsIn(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := fd.Recv.List[0].Type
			if star, ok := recv.(*ast.StarExpr); ok {
				recv = star.X
			}
			if ix, ok := recv.(*ast.IndexExpr); ok { // generic receiver
				recv = ix.X
			}
			if id, ok := recv.(*ast.Ident); ok {
				out[id.Name+"."+fd.Name.Name] = true
			}
		}
	}
	return out
}

// pkgDir maps a table import path to the package's source directory,
// relative to this test's working directory (internal/lint).
func pkgDir(t *testing.T, importPath string) string {
	t.Helper()
	rest, ok := strings.CutPrefix(importPath, "repro/internal/")
	if !ok {
		t.Fatalf("table import path %q is not under repro/internal", importPath)
	}
	return filepath.Join("..", rest)
}

// TestReleaseTableCoversResourceTypes pins the pairing table to the tree in
// both directions: every table entry must name a method that still exists,
// and every acquire/release-shaped method in a table-covered package must
// appear in the table.
func TestReleaseTableCoversResourceTypes(t *testing.T) {
	type ref struct{ pkg, typ, method string }
	split := func(recv, method string) ref {
		i := strings.LastIndex(recv, ".")
		if i < 0 {
			t.Fatalf("malformed table receiver %q", recv)
		}
		return ref{pkg: recv[:i], typ: recv[i+1:], method: method}
	}

	// Collect every method the table references, and the set of packages it
	// covers.
	var refs []ref
	covered := make(map[string]bool)
	inTable := make(map[string]bool) // "pkg|Type.Method"
	for _, pair := range lint.ReleaseTable {
		r := split(pair.Acquire.Recv, pair.Acquire.Method)
		refs = append(refs, r)
		covered[r.pkg] = true
		inTable[r.pkg+"|"+r.typ+"."+r.method] = true
		for _, rel := range pair.Releases {
			rr := split(rel.Recv, rel.Method)
			refs = append(refs, rr)
			covered[rr.pkg] = true
			inTable[rr.pkg+"|"+rr.typ+"."+rr.method] = true
		}
	}

	methods := make(map[string]map[string]bool) // pkg -> Type.Method set
	for pkg := range covered {
		methods[pkg] = methodsIn(t, pkgDir(t, pkg))
	}

	// Direction 1: the table references only methods that exist.
	for _, r := range refs {
		if !methods[r.pkg][r.typ+"."+r.method] {
			t.Errorf("ReleaseTable references %s.%s.%s, which no longer exists — update the pairing table",
				r.pkg, r.typ, r.method)
		}
	}

	// Direction 2: no acquire/release-shaped method in a covered package is
	// missing from the table.
	for pkg, set := range methods {
		for tm := range set {
			method := tm[strings.LastIndex(tm, ".")+1:]
			if !acquireVerbs.MatchString(method) && !releaseVerbs.MatchString(method) {
				continue
			}
			if !inTable[pkg+"|"+tm] {
				t.Errorf("%s.%s looks like an acquire/release method but is not in ReleaseTable — add a pairing or rename it",
					pkg, tm)
			}
		}
	}
}
