package bench

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/attrib"
)

// TestAttribDemoExactness runs the attribution demo workload — cold, warm,
// DPU-pinned, FPGA- and GPU-pinned invokes plus chains — and enforces the
// exactness invariant on every invocation: stages sum to the root span
// duration to the nanosecond and nothing lands in the unclassified bucket.
func TestAttribDemoExactness(t *testing.T) {
	o, an, err := AttribDemo()
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Invocations) == 0 {
		t.Fatal("demo attributed no invocations")
	}
	kinds := map[string]bool{}
	for i := range an.Invocations {
		inv := &an.Invocations[i]
		if r := inv.Residue(); r != 0 {
			t.Errorf("invocation %d (%s): residue %v — total %v vs stage sum %v",
				inv.Root.ID, inv.Fn, r, inv.Total, inv.Stages.Sum())
		}
		if other := inv.Stages.Get(attrib.StageOther); other != 0 {
			t.Errorf("invocation %d: %v charged to %q", inv.Root.ID, other, attrib.StageOther)
		}
		if inv.Kind != "" {
			kinds[inv.Kind] = true
		}
	}
	// The demo pins invokes onto all four PU kinds; attribution must see
	// each of them.
	for _, k := range []string{"CPU", "DPU", "FPGA", "GPU"} {
		if !kinds[k] {
			t.Errorf("no invocation attributed to PU kind %s", k)
		}
	}
	if o.SLO == nil {
		t.Fatal("demo observer has no SLO engine attached")
	}
	if sts := o.SLO.Status(); len(sts) == 0 {
		t.Error("SLO engine recorded nothing")
	}
}

// TestShardedAttribDemo locks the attribution outputs — the breakdown table,
// the folded-stack profile, and the SLO JSON document — to identical bytes
// at every kernel worker count. The analyzer iterates recorded span order
// and fixed stage arrays, so one reordered nanosecond anywhere shows up.
func TestShardedAttribDemo(t *testing.T) {
	var refTable, refFolded, refSLO []byte
	for _, n := range shardSweep() {
		withShards(n, func() {
			o, an, err := AttribDemo()
			if err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			var table, folded, slo bytes.Buffer
			an.BreakdownTable().Fprint(&table)
			if err := an.WriteFolded(&folded); err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			if err := o.SLO.WriteJSON(&slo); err != nil {
				t.Fatalf("shards=%d: %v", n, err)
			}
			if refTable == nil {
				refTable, refFolded, refSLO = table.Bytes(), folded.Bytes(), slo.Bytes()
				return
			}
			if !bytes.Equal(table.Bytes(), refTable) {
				t.Fatalf("shards=%d: breakdown table diverges:\n%s\nvs\n%s", n, table.String(), refTable)
			}
			if !bytes.Equal(folded.Bytes(), refFolded) {
				t.Fatalf("shards=%d: folded profile diverges:\n%s\nvs\n%s", n, folded.String(), refFolded)
			}
			if !bytes.Equal(slo.Bytes(), refSLO) {
				t.Fatalf("shards=%d: SLO JSON diverges:\n%s\nvs\n%s", n, slo.String(), refSLO)
			}
		})
	}
}

// TestShardSoakTelemetry pins the soak's window telemetry: at a fixed
// partitioning the per-round counters render to identical bytes at every
// worker count, and attaching the observer leaves the simulation fingerprint
// untouched.
func TestShardSoakTelemetry(t *testing.T) {
	const machines, invocations, shards = 4, 800, 4
	plain, err := ShardSoak(ShardSoakConfig{Machines: machines, Invocations: invocations, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		wt := &obs.WindowTelemetry{}
		res, err := ShardSoak(ShardSoakConfig{
			Machines: machines, Invocations: invocations,
			Shards: shards, Workers: workers, Telemetry: wt,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Fingerprint != plain.Fingerprint {
			t.Fatalf("workers=%d: telemetry changed the fingerprint\n got  %s\n want %s",
				workers, res.Fingerprint, plain.Fingerprint)
		}
		if wt.Rounds() == 0 {
			t.Fatalf("workers=%d: soak reported no windowed rounds", workers)
		}
		var buf bytes.Buffer
		if err := wt.WriteText(&buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("workers=%d: telemetry diverges:\n%s\nvs\n%s", workers, buf.String(), ref)
		}
	}
}
