package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestSettleOnce(t *testing.T) {
	linttest.Run(t, lint.SettleOnce,
		linttest.Package{Path: "repro/internal/molecule", Dir: "testdata/settleonce/molecule"})
}
