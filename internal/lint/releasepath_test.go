package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestReleasePathMolecule(t *testing.T) {
	linttest.Run(t, lint.ReleasePath,
		linttest.Package{Path: "repro/internal/molecule", Dir: "testdata/releasepath/molecule"})
}

func TestReleasePathMem(t *testing.T) {
	linttest.Run(t, lint.ReleasePath,
		linttest.Package{Path: "repro/internal/mem", Dir: "testdata/releasepath/mem"})
}

func TestReleasePathLang(t *testing.T) {
	linttest.Run(t, lint.ReleasePath,
		linttest.Package{Path: "repro/internal/lang", Dir: "testdata/releasepath/lang"})
}
