package hw_test

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

// TestInterconnectLookahead: the interconnect registers its base latency as
// the sharded group's lookahead — the BaseLat-as-lookahead argument.
func TestInterconnectLookahead(t *testing.T) {
	sh := sim.NewSharded(2)
	ic := hw.NewInterconnect(sh, hw.Link{
		Kind: hw.LinkNetwork, BaseLat: 50 * time.Microsecond, Bandwith: 1e9,
	})
	if got := sh.Lookahead(); got != 50*time.Microsecond {
		t.Fatalf("lookahead = %v, want 50µs", got)
	}
	if ic.Lookahead() != 50*time.Microsecond {
		t.Fatalf("interconnect lookahead = %v", ic.Lookahead())
	}
	// Transfer time includes the bandwidth term but never undercuts BaseLat.
	if tt := ic.TransferTime(1 << 20); tt <= ic.Lookahead() {
		t.Fatalf("1MiB transfer %v not above base latency", tt)
	}
}

func TestInterconnectZeroBaseLatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-BaseLat interconnect did not panic")
		}
	}()
	hw.NewInterconnect(sim.NewSharded(2), hw.Link{Kind: hw.LinkNetwork})
}

// TestInterconnectSendDelivery: a message between two machines on separate
// domains arrives exactly one transfer time after it was sent, in the
// destination's scheduler context, and the parallel run drains cleanly.
func TestInterconnectSendDelivery(t *testing.T) {
	const payload = 4096
	sh := sim.NewSharded(2)
	link := hw.Link{Kind: hw.LinkNetwork, BaseLat: params.NetworkBaseLatency, Bandwith: params.NetworkBandwidth}
	ic := hw.NewInterconnect(sh, link)

	// Each domain hosts a full machine, proving machines and the
	// interconnect compose: local transfers inside each domain, network
	// sends between them.
	m0 := hw.Build(sh.Domain(0), hw.Config{DPUs: 1})
	_ = hw.Build(sh.Domain(1), hw.Config{DPUs: 1})

	var arrival sim.Time
	var sent sim.Time
	sh.Domain(0).Spawn("sender", func(p *sim.Proc) {
		// Local intra-machine transfer first: domain activity composes
		// with cross-domain sends.
		if _, err := m0.Transfer(p, 0, 1, 1024); err != nil {
			t.Errorf("local transfer: %v", err)
		}
		sent = p.Now()
		ic.Send(p.Env(), 1, payload, func() {
			arrival = sh.Domain(1).Now()
		})
	})
	sh.Run(2)

	want := sent + sim.Time(link.TransferTime(payload))
	if arrival != want {
		t.Fatalf("arrival at %v, want %v (sent %v + transfer %v)",
			arrival, want, sent, link.TransferTime(payload))
	}
	if sh.LiveProcs() != 0 {
		t.Fatalf("blocked procs after run: %v", sh.BlockedProcs())
	}
}

// TestMachineMinBaseLat: the sub-machine lookahead floor is the smallest
// non-local link latency on the box.
func TestMachineMinBaseLat(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1, FPGAs: 1})
	got := m.MinBaseLat()
	want := params.RDMABaseLatency
	if params.DMABaseLatency < want {
		want = params.DMABaseLatency
	}
	if got != want {
		t.Fatalf("MinBaseLat = %v, want %v", got, want)
	}
	if hw.NewMachine(env).MinBaseLat() != 0 {
		t.Fatal("empty machine should report zero MinBaseLat")
	}
}
