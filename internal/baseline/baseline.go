// Package baseline implements the systems Molecule is evaluated against.
//
// Molecule-homo is the homogeneous version of Molecule (§6): it does not use
// XPU-Shim, so each deployment manages a single PU (CPU or DPU, never both,
// and no accelerators); it boots functions the conventional way (container +
// runtime + dependency import, no cfork); and its function DAGs communicate
// over the network through Node.js Express / Python Flask, like OpenWhisk.
// A multi-PU "cluster" of homo deployments models the Baseline-CrossPU rows
// of Fig 14e: functions on different PUs still talk over the network.
//
// The commercial comparators (AWS Lambda, OpenWhisk) are closed platforms
// modeled by their reported startup and step-communication latencies
// (Fig 9); they cannot be re-run offline.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Result is one baseline invocation's latency breakdown.
type Result struct {
	Fn      string
	PU      hw.PUID
	Cold    bool
	Startup time.Duration
	Exec    time.Duration
	Total   time.Duration
}

// ChainResult is one baseline DAG invocation.
type ChainResult struct {
	Total       time.Duration
	EdgeLatency []time.Duration // one-way request latency per edge (Fig 12)
	ExecTotal   time.Duration
}

// Homo is a Molecule-homo deployment set: one conventional serverless
// runtime per general-purpose PU.
type Homo struct {
	Env      *sim.Env
	Machine  *hw.Machine
	Registry *workloads.Registry

	// JitterPct adds deterministic per-request latency variation, like
	// molecule.Options.JitterPct.
	JitterPct float64

	oses      map[hw.PUID]*localos.OS
	warm      map[hw.PUID]map[string][]*lang.Instance
	jitterSeq uint64
}

// NewHomo builds homo deployments on every general-purpose PU of the
// machine.
func NewHomo(env *sim.Env, m *hw.Machine, reg *workloads.Registry) *Homo {
	h := &Homo{
		Env: env, Machine: m, Registry: reg,
		oses: make(map[hw.PUID]*localos.OS),
		warm: make(map[hw.PUID]map[string][]*lang.Instance),
	}
	for _, pu := range m.PUs() {
		if pu.Kind.GeneralPurpose() {
			h.oses[pu.ID] = localos.New(env, pu)
			h.warm[pu.ID] = make(map[string][]*lang.Instance)
		}
	}
	return h
}

// jitter stretches d by a deterministic pseudo-random factor, mirroring
// molecule's scheduling-noise model.
func (h *Homo) jitter(d time.Duration) time.Duration {
	if h.JitterPct <= 0 || d <= 0 {
		return d
	}
	h.jitterSeq++
	z := h.jitterSeq + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z%2001)/1000 - 1
	return time.Duration(float64(d) * (1 + h.JitterPct*frac))
}

// langHopPenalty scales the per-edge network latency by the web framework's
// request handling weight (Flask > Express).
func langHopPenalty(k lang.Kind) float64 {
	if k == lang.Python {
		return params.FlaskHopPenalty
	}
	return 1.0
}

// coldStart boots a function instance the conventional way: container +
// runtime init + function load + dependency import.
func (h *Homo) coldStart(p *sim.Proc, fn *workloads.Function, pu hw.PUID) (*lang.Instance, error) {
	os, ok := h.oses[pu]
	if !ok {
		return nil, fmt.Errorf("baseline: PU %d runs no homo deployment", pu)
	}
	spec, err := lang.SpecFor(fn.Lang)
	if err != nil {
		return nil, err
	}
	inst := lang.BaselineColdStart(p, os, spec, fn.Name, "homo-"+fn.Name)
	p.Sleep(os.PU.StartupTime(fn.DepImport))
	return inst, nil
}

// Invoke serves one request on the given PU, using a warm instance when one
// is cached.
func (h *Homo) Invoke(p *sim.Proc, funcName string, pu hw.PUID, arg workloads.Arg, forceCold bool) (Result, error) {
	fn, err := h.Registry.Get(funcName)
	if err != nil {
		return Result{}, err
	}
	if _, ok := h.oses[pu]; !ok {
		return Result{}, fmt.Errorf("baseline: PU %d runs no homo deployment", pu)
	}
	start := p.Now()
	pool := h.warm[pu][funcName]
	var inst *lang.Instance
	cold := true
	if !forceCold && len(pool) > 0 {
		inst = pool[len(pool)-1]
		h.warm[pu][funcName] = pool[:len(pool)-1]
		cold = false
	} else {
		inst, err = h.coldStart(p, fn, pu)
		if err != nil {
			return Result{}, err
		}
	}
	if extra := h.jitter(p.Now().Sub(start)) - p.Now().Sub(start); extra > 0 {
		p.Sleep(extra)
	}
	startupDone := p.Now()
	if !cold {
		p.Sleep(params.WarmDispatchTime)
	}
	inst.Invoke(p, h.jitter(fn.CPUCost(arg)), false)
	h.warm[pu][funcName] = append(h.warm[pu][funcName], inst)
	return Result{
		Fn: funcName, PU: pu, Cold: cold,
		Startup: startupDone.Sub(start),
		Exec:    p.Now().Sub(startupDone),
		Total:   p.Now().Sub(start),
	}, nil
}

// InvokeChain runs a synchronous function chain the baseline way: every
// edge is an HTTP request through the web framework (and the network stack
// between PUs), and every response travels back the same path. Instances
// are booted on first use and cached, like a warmed OpenWhisk deployment.
func (h *Homo) InvokeChain(p *sim.Proc, names []string, placement []hw.PUID, arg workloads.Arg) (ChainResult, error) {
	if len(names) == 0 {
		return ChainResult{}, fmt.Errorf("baseline: empty chain")
	}
	if placement == nil {
		placement = make([]hw.PUID, len(names))
	}
	if len(placement) != len(names) {
		return ChainResult{}, fmt.Errorf("baseline: placement length mismatch")
	}
	fns := make([]*workloads.Function, len(names))
	insts := make([]*lang.Instance, len(names))
	for i, name := range names {
		fn, err := h.Registry.Get(name)
		if err != nil {
			return ChainResult{}, err
		}
		fns[i] = fn
		pool := h.warm[placement[i]][name]
		if len(pool) > 0 {
			insts[i] = pool[len(pool)-1]
			h.warm[placement[i]][name] = pool[:len(pool)-1]
		} else {
			inst, err := h.coldStart(p, fn, placement[i])
			if err != nil {
				return ChainResult{}, err
			}
			insts[i] = inst
		}
	}
	defer func() {
		for i, inst := range insts {
			h.warm[placement[i]][names[i]] = append(h.warm[placement[i]][names[i]], inst)
		}
	}()

	var res ChainResult
	start := p.Now()
	// Gateway → first function (request), then down the chain; responses
	// unwind synchronously.
	hop := func(from, to hw.PUID, k lang.Kind, bytes int) time.Duration {
		return time.Duration(float64(h.Machine.NetworkTransferTime(from, to, bytes)) * langHopPenalty(k))
	}
	// Request edges (the gateway entry is common to every system and is
	// excluded from the measurement, like the paper's).
	for i := range names {
		if i > 0 {
			argB, _ := fns[i].Sizes(arg)
			d := hop(placement[i-1], placement[i], fns[i].Lang, argB)
			res.EdgeLatency = append(res.EdgeLatency, d)
			p.Sleep(d)
		}
		execStart := p.Now()
		insts[i].Invoke(p, fns[i].CPUCost(arg), false)
		res.ExecTotal += p.Now().Sub(execStart)
	}
	// Response edges unwind back toward the gateway.
	for i := len(names) - 1; i >= 1; i-- {
		_, resB := fns[i].Sizes(arg)
		p.Sleep(hop(placement[i], placement[i-1], fns[i].Lang, resB))
	}
	res.Total = p.Now().Sub(start)
	return res, nil
}

// EdgeLatencyOneWay returns the baseline's one-way DAG edge latency between
// two PUs for a function of the given language — the quantity Fig 12 plots.
func (h *Homo) EdgeLatencyOneWay(from, to hw.PUID, k lang.Kind, bytes int) time.Duration {
	return time.Duration(float64(h.Machine.NetworkTransferTime(from, to, bytes)) * langHopPenalty(k))
}

// --- Commercial platforms (Fig 9) -------------------------------------------

// Commercial models a closed serverless platform by its reported latencies.
type Commercial struct {
	Name    string
	Startup time.Duration
	Comm    time.Duration
}

// AWSLambda returns the AWS Lambda model (startup: managed MicroVM cold
// boot; comm: Step Functions transition).
func AWSLambda() Commercial {
	return Commercial{Name: "AWS Lambda", Startup: params.AWSLambdaStartup, Comm: params.AWSLambdaStepComm}
}

// OpenWhisk returns the Apache OpenWhisk model (startup: docker cold boot
// through the invoker; comm: action-to-action via the controller).
func OpenWhisk() Commercial {
	return Commercial{Name: "OpenWhisk", Startup: params.OpenWhiskStartup, Comm: params.OpenWhiskComm}
}

// ColdStart advances p by the platform's cold-start latency and returns it.
func (c Commercial) ColdStart(p *sim.Proc) time.Duration {
	p.Sleep(c.Startup)
	return c.Startup
}

// Communicate advances p by one inter-function communication and returns
// its latency.
func (c Commercial) Communicate(p *sim.Proc) time.Duration {
	p.Sleep(c.Comm)
	return c.Comm
}
