// Package molecule implements the Molecule serverless runtime for
// heterogeneous computers (§4 of the paper).
//
// Molecule runs on one general-purpose PU of a heterogeneous computer (the
// host CPU here) and manages functions on every other PU through XPU-Shim:
// executors are xSpawn'd onto general-purpose PUs and drive the local
// vectorized-sandbox runtime; accelerators (FPGA, GPU) get virtual shim
// nodes on the host that run runf/rung. The runtime implements the paper's
// two latency optimizations — cfork-based startup (§4.2) and nIPC-based
// direct-connect DAG communication (§4.3) — plus keep-alive instance
// caching with a greedy-dual policy and per-PU-type resource profiles.
package molecule

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
	"repro/internal/xpu"
)

// StartupMode selects the cold-start mechanism.
type StartupMode int

const (
	// StartupCfork forks instances from language templates (§4.2, the
	// paper's contribution).
	StartupCfork StartupMode = iota
	// StartupPlain boots a fresh runtime per instance (the baseline path).
	StartupPlain
	// StartupSnapshot restores instances from per-function snapshots — the
	// Replayable/FireCracker-class alternative of the Fig 15 design space.
	StartupSnapshot
)

var startupModeNames = map[StartupMode]string{
	StartupCfork: "cfork", StartupPlain: "plain", StartupSnapshot: "snapshot",
}

func (m StartupMode) String() string {
	if s, ok := startupModeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("StartupMode(%d)", int(m))
}

// Options configure a Molecule runtime.
type Options struct {
	// UseCfork enables fork-based startup from language templates (§4.2).
	// When false, Startup selects the alternative mechanism. Retained as a
	// boolean for compatibility: UseCfork=true forces StartupCfork.
	UseCfork bool
	// Startup picks the cold-start mechanism when UseCfork is false:
	// StartupPlain (default zero value) or StartupSnapshot.
	Startup StartupMode
	// CpusetMutexPatch applies the kernel cpuset patch (Fig 11a). The
	// paper's server-side results (Fig 14) run without it.
	CpusetMutexPatch bool
	// Retention enables FPGA DRAM data retention for zero-copy chains
	// (§4.3).
	Retention bool
	// ErasePolicy for FPGA images; Molecule's default is NoErase.
	ErasePolicy sandbox.ErasePolicy
	// KeepWarmPerPU bounds the warm-instance cache per PU (0 = default).
	KeepWarmPerPU int
	// PrewarmContainers pre-creates this many function containers per
	// general-purpose PU off the critical path (the FuncContainer
	// optimization); they are replenished in the background.
	PrewarmContainers int
	// GenericTemplates disables §4.2's dedicated templates: cforked
	// children then import the function's dependencies on the critical
	// path instead of inheriting them from a per-function template.
	GenericTemplates bool
	// ZygoteTree replaces the single generic template per runtime with a
	// package-aware zygote forest (SOCK/Forklift lineage): cold starts fork
	// from the deepest pre-warmed template covering the function's package
	// manifest and pay only the residual imports plus the function's
	// private tail. Requires UseCfork; off (the default) leaves the flat
	// cfork path literally untouched.
	ZygoteTree bool
	// ZygoteBudgetMB caps the summed residual pages of specialized
	// templates per (runtime, PU). Zero picks params.ZygoteBudgetMB;
	// negative means no budget at all — the forest stays root-only, which
	// is flat cfork plus full on-child imports (the comparison baseline).
	ZygoteBudgetMB int
	// ZygoteFitInterval is how many observed cold starts trigger one
	// background fit round (0 = params.ZygoteFitInterval).
	ZygoteFitInterval int
	// ZygoteSeed seeds the fitter's deterministic tie-breaking (0 = 1).
	ZygoteSeed uint64
	// JitterPct adds deterministic per-request latency variation (e.g. 0.08
	// = ±8%), hash-derived from the request sequence so runs stay
	// reproducible. Zero (the default) disables it; calibration tests rely
	// on exact latencies.
	JitterPct float64
	// Recovery configures the per-invoke timeout / retry / failover policy.
	// The zero value disables it entirely: Invoke takes the exact pre-
	// recovery code path, keeping the golden report byte-identical.
	Recovery RecoveryOptions
}

// DefaultOptions returns the configuration the paper evaluates as
// "Molecule".
func DefaultOptions() Options {
	return Options{
		UseCfork:          true,
		CpusetMutexPatch:  false,
		Retention:         true,
		ErasePolicy:       sandbox.NoErase,
		KeepWarmPerPU:     64,
		PrewarmContainers: 8,
	}
}

// puNode bundles everything Molecule holds for one PU.
type puNode struct {
	pu   *hw.PU
	node *xpu.Node

	// General-purpose PUs.
	os        *localos.OS
	cr        *sandbox.ContainerRuntime
	execXPID  xpu.XPID // the executor process on this PU
	execDead  bool     // executor crashed; respawned on next command
	warm      map[string][]*instance
	capacity  int // max concurrent instances (density model)
	liveCount int

	// Accelerators.
	runf *sandbox.RunF
	rung *sandbox.RunG
	// fpgaVector is the set of functions currently baked into the image.
	fpgaVector []string
	// snapshots caches per-function checkpoint images (StartupSnapshot).
	snapshots map[string]*lang.Snapshot
	// busy accumulates handler execution time on this PU (utilization).
	busy time.Duration
	// sandboxSeq numbers FPGA/GPU sandbox IDs.
	sandboxSeq int
}

// Runtime is the Molecule serverless runtime for one heterogeneous
// computer.
type Runtime struct {
	Env      *sim.Env
	Machine  *hw.Machine
	Shim     *xpu.Shim
	Registry *workloads.Registry
	Opts     Options

	hostID hw.PUID
	nodes  map[hw.PUID]*puNode
	// order lists node PU IDs in machine order so every scan over nodes is
	// deterministic (map iteration order is not).
	order []hw.PUID
	funcs map[string]*Deployment
	cache *keepAlive
	bill  *Billing
	// warmTotal counts warm-pooled instances per function across all PUs.
	// It lets popWarm answer the common cases in O(1): a global miss skips
	// the node scan entirely. Every warm-pool mutation — release, popWarm,
	// destroy, keep-alive eviction, executor kill, crash reaping — keeps it
	// in sync (TestWarmTotalConsistency pins the invariant).
	warmTotal map[string]int

	// obs is the observability layer; nil (the default) disables all span
	// and metric recording at zero cost — every obs call site either
	// nil-checks rt.obs first or calls a nil-safe obs method.
	obs *obs.Observer

	// faults is the attached fault plan (AttachFaults); nil means a healthy
	// machine and zero-cost checks everywhere.
	faults *faults.Plan

	fifoSeq   int
	jitterSeq uint64
}

// xpuSink adapts *obs.Observer to the shim's consumer-side xpu.MetricSink,
// keeping the xpu package free of an obs import (base layers must not
// depend on reporting layers). Series handles returned here are cached by
// the shim, so the Intern cost is paid once per series, not per update.
type xpuSink struct{ o *obs.Observer }

func (s xpuSink) Counter(name, labelKey, labelValue string) xpu.Counter {
	return s.o.CounterSet(obs.Intern(name, obs.L(labelKey, labelValue)))
}

func (s xpuSink) Gauge(name, labelKey, labelValue string) xpu.Gauge {
	return s.o.GaugeSet(obs.Intern(name, obs.L(labelKey, labelValue)))
}

// sandboxSink is the same adapter for sandbox.MetricSink. It is a separate
// type because Go's nominal return types make xpu.Counter and
// sandbox.Counter distinct interfaces even with compatible method sets.
type sandboxSink struct{ o *obs.Observer }

func (s sandboxSink) Counter(name, labelKey, labelValue string) sandbox.Counter {
	return s.o.CounterSet(obs.Intern(name, obs.L(labelKey, labelValue)))
}

// SetObserver attaches (or, with nil, detaches) the observability layer.
// The observer is propagated to the XPU-Shim and every PU's sandbox
// runtime through their consumer-side metric sinks, and the tracer learns
// the machine's PU names so exported traces render one named track per PU.
func (rt *Runtime) SetObserver(o *obs.Observer) {
	rt.obs = o
	if o != nil {
		rt.Shim.SetMetrics(xpuSink{o})
	} else {
		rt.Shim.SetMetrics(nil)
	}
	for _, n := range rt.orderedNodes() {
		if n.cr != nil {
			if o != nil {
				n.cr.Metrics = sandboxSink{o}
			} else {
				n.cr.Metrics = nil
			}
		}
		if o != nil {
			o.Tracer.NamePU(int(n.pu.ID), fmt.Sprintf("PU %d (%s %s)", n.pu.ID, n.pu.Kind, n.pu.Name))
		}
	}
	if o != nil {
		o.Metrics.SetHelp("molecule_invocations_total", "Completed invocations by function, PU, and PU kind.")
		o.Metrics.SetHelp("molecule_cold_starts_total", "Invocations that cold-started an instance.")
		o.Metrics.SetHelp("molecule_warm_hits_total", "Invocations served from the keep-alive warm pool.")
		o.Metrics.SetHelp("molecule_invoke_latency_seconds", "End-to-end invocation latency in virtual time, by PU.")
		o.Metrics.SetHelp("molecule_startup_latency_seconds", "Cold-start sandbox acquisition latency in virtual time, by PU.")
		o.Metrics.SetHelp("molecule_keepalive_evictions_total", "Warm instances evicted by the greedy-dual keep-alive policy.")
		o.Metrics.SetHelp("molecule_nipc_commands_total", "Control-plane executor commands sent over the interconnect, by target PU.")
		o.Metrics.SetHelp("molecule_autoscale_scale_outs_total", "Autoscaler pool growth events, by function.")
		o.Metrics.SetHelp("molecule_autoscale_scale_ins_total", "Autoscaler pool shrink events (residents retired), by function.")
		o.Metrics.SetHelp("xpu_nipc_messages_total", "Cross-PU FIFO payloads by directed interconnect link.")
		o.Metrics.SetHelp("xpu_nipc_bytes_total", "Cross-PU FIFO payload bytes by directed interconnect link.")
		o.Metrics.SetHelp("xpu_fifo_depth", "Current queue depth of each XPU-FIFO.")
		o.Metrics.SetHelp("sandbox_cfork_total", "Sandboxes started by forking a language template (§4.2).")
		o.Metrics.SetHelp("sandbox_plain_boots_total", "Sandboxes started by cold-booting a fresh runtime.")
		o.Metrics.SetHelp("sandbox_pool_hits_total", "Sandbox creations served from the prepared container pool.")
		o.Metrics.SetHelp("sandbox_pool_misses_total", "Sandbox creations that built a container on the critical path.")
		o.Metrics.SetHelp("sandbox_cow_faults_total", "Handler invocations that paid copy-on-write faults after cfork.")
		o.Metrics.SetHelp("sandbox_zygote_forks_total", "Sandboxes forked from a zygote-forest template (any depth).")
		o.Metrics.SetHelp("sandbox_zygote_ancestor_hits_total", "Zygote forks that resolved to a specialized (non-root) template.")
		o.Metrics.SetHelp("sandbox_zygote_resets_total", "Zygote forests reset by executor kill or PU crash.")
		o.Metrics.SetHelp("molecule_invoke_retries_total", "Invocation attempts retried after a transient failure, by function.")
		o.Metrics.SetHelp("molecule_invoke_timeouts_total", "Invocation attempts abandoned by the per-invoke timeout, by function.")
		o.Metrics.SetHelp("molecule_failovers_total", "Pinned invocations re-placed onto a surviving PU after infrastructure failure.")
		o.Metrics.SetHelp("molecule_invoke_unavailable_total", "Invocations that exhausted every retry and returned ErrUnavailable.")
		o.Metrics.SetHelp("molecule_crash_evictions_total", "Warm instances evicted because their PU crashed, by PU and function.")
		o.Metrics.SetHelp("faults_injected_total", "Faults injected by the attached fault plan, by kind.")
	}
	if rt.faults != nil {
		rt.faults.Obs = o
	}
}

// Observer returns the attached observability layer (nil when disabled).
func (rt *Runtime) Observer() *obs.Observer { return rt.obs }

// puLabel renders a PU ID as the standard {pu="N"} metric label.
func puLabel(id hw.PUID) obs.Label { return obs.L("pu", strconv.Itoa(int(id))) }

// New builds a Molecule runtime over the machine: one OS and shim node per
// general-purpose PU, virtual shim nodes plus runf/rung for accelerators,
// and an executor xSpawn'd onto every non-host general-purpose PU. The
// calling process pays the bootstrap costs (template boots are charged when
// first used).
func New(p *sim.Proc, m *hw.Machine, reg *workloads.Registry, opts Options) (*Runtime, error) {
	env := p.Env()
	rt := &Runtime{
		Env:       env,
		Machine:   m,
		Shim:      xpu.NewShim(env, m),
		Registry:  reg,
		Opts:      opts,
		nodes:     make(map[hw.PUID]*puNode),
		funcs:     make(map[string]*Deployment),
		bill:      NewBilling(),
		warmTotal: make(map[string]int),
	}
	rt.cache = newKeepAlive(opts.KeepWarmPerPU)

	// Pass 1: general-purpose PUs get a local OS and a shim node.
	var host *hw.PU
	for _, pu := range m.PUs() {
		if !pu.Kind.GeneralPurpose() {
			continue
		}
		if host == nil && pu.Kind == hw.CPU {
			host = pu
		}
		os := localos.New(env, pu)
		node := rt.Shim.AddNode(pu, os)
		cr := sandbox.NewContainerRuntime(os)
		cr.UseCfork = opts.UseCfork
		cr.CpusetMutexPatch = opts.CpusetMutexPatch
		if opts.ZygoteTree && opts.UseCfork {
			cr.UseZygoteTree = true
			cr.ZygoteCfg = zygoteConfig(opts)
		}
		rt.nodes[pu.ID] = &puNode{
			pu: pu, node: node, os: os, cr: cr,
			warm:      make(map[string][]*instance),
			snapshots: make(map[string]*lang.Snapshot),
			capacity:  densityCapacity(pu),
		}
		rt.order = append(rt.order, pu.ID)
	}
	if host == nil {
		return nil, fmt.Errorf("molecule: machine has no host CPU")
	}
	rt.hostID = host.ID
	hostNode := rt.nodes[host.ID]

	// Pass 2: accelerators get virtual shim nodes on the host plus their
	// sandbox runtimes.
	for _, pu := range m.PUs() {
		switch pu.Kind {
		case hw.FPGA:
			vn := rt.Shim.AddVirtualNode(pu, host, hostNode.os)
			rf, err := sandbox.NewRunF(m, pu, host)
			if err != nil {
				return nil, err
			}
			rf.Policy = opts.ErasePolicy
			pu.Device.SetRetention(opts.Retention)
			rt.nodes[pu.ID] = &puNode{pu: pu, node: vn, runf: rf}
			rt.order = append(rt.order, pu.ID)
		case hw.GPU:
			vn := rt.Shim.AddVirtualNode(pu, host, hostNode.os)
			rg, err := sandbox.NewRunG(env, m, pu, host)
			if err != nil {
				return nil, err
			}
			rt.nodes[pu.ID] = &puNode{pu: pu, node: vn, rung: rg}
			rt.order = append(rt.order, pu.ID)
		}
	}

	// Pass 3: xSpawn an executor onto each non-host general-purpose PU;
	// the host runs its executor in-process.
	hostNode.execXPID = hostNode.node.Register(hostNode.os.NewDetachedProcess("molecule-executor"))
	for _, n := range rt.orderedNodes() {
		if n.pu.ID == rt.hostID || !n.pu.Kind.GeneralPurpose() {
			continue
		}
		x, err := hostNode.node.XSpawn(p, n.pu.ID, "molecule-executor", nil, nil)
		if err != nil {
			return nil, err
		}
		n.execXPID = x
	}

	// Pass 4: pre-create function containers off the critical path.
	if opts.PrewarmContainers > 0 {
		for _, n := range rt.orderedNodes() {
			if n.cr != nil {
				n.cr.Prewarm(p, opts.PrewarmContainers)
			}
		}
	}
	return rt, nil
}

// zygoteConfig maps the runtime options onto the forest's fitter knobs.
func zygoteConfig(opts Options) lang.ZygoteTreeConfig {
	cfg := lang.DefaultZygoteTreeConfig()
	switch {
	case opts.ZygoteBudgetMB < 0:
		cfg.BudgetPages = 0 // root-only: the flat-cfork comparison arm
	case opts.ZygoteBudgetMB > 0:
		cfg.BudgetPages = opts.ZygoteBudgetMB << 20 / params.PageSize
	}
	if opts.ZygoteFitInterval > 0 {
		cfg.FitInterval = opts.ZygoteFitInterval
	}
	if opts.ZygoteSeed != 0 {
		cfg.Seed = opts.ZygoteSeed
	}
	return cfg
}

// zygoteOn reports whether the zygote forest drives this runtime's cold
// starts.
func (rt *Runtime) zygoteOn() bool {
	return rt.Opts.ZygoteTree && rt.Opts.UseCfork
}

// densityCapacity models how many concurrent instances a PU's resources
// support (Fig 2a: 1000 on the host, ~256 per Bluefield DPU).
func densityCapacity(pu *hw.PU) int {
	switch pu.Kind {
	case hw.CPU:
		return params.DensityCPUInstances
	case hw.DPU:
		return params.DensityPerDPUInstances
	default:
		return 0
	}
}

// orderedNodes returns the per-PU state in machine (PU-ID) order.
func (rt *Runtime) orderedNodes() []*puNode {
	out := make([]*puNode, 0, len(rt.order))
	for _, id := range rt.order {
		out = append(out, rt.nodes[id])
	}
	return out
}

// HostID returns the PU running the Molecule control plane.
func (rt *Runtime) HostID() hw.PUID { return rt.hostID }

// Node returns Molecule's per-PU state (nil for unknown PUs). Exposed for
// benchmarks and tests.
func (rt *Runtime) Node(id hw.PUID) *puNode { return rt.nodes[id] }

// ContainerRuntimeOn returns the container runtime for a general-purpose
// PU, or nil.
func (rt *Runtime) ContainerRuntimeOn(id hw.PUID) *sandbox.ContainerRuntime {
	if n := rt.nodes[id]; n != nil {
		return n.cr
	}
	return nil
}

// RunFOn returns the FPGA runtime for an FPGA PU, or nil.
func (rt *Runtime) RunFOn(id hw.PUID) *sandbox.RunF {
	if n := rt.nodes[id]; n != nil {
		return n.runf
	}
	return nil
}

// RunGOn returns the GPU runtime for a GPU PU, or nil.
func (rt *Runtime) RunGOn(id hw.PUID) *sandbox.RunG {
	if n := rt.nodes[id]; n != nil {
		return n.rung
	}
	return nil
}

// Utilization returns a PU's accumulated-busy fraction of elapsed virtual
// time (0 when no time has passed).
func (rt *Runtime) Utilization(id hw.PUID) float64 {
	n := rt.nodes[id]
	if n == nil || rt.Env.Now() == 0 {
		return 0
	}
	return float64(n.busy) / float64(time.Duration(rt.Env.Now()))
}

// Billing returns the runtime's billing ledger.
func (rt *Runtime) Billing() *Billing { return rt.bill }

// SetCapacity overrides a general-purpose PU's instance capacity — used by
// scaled-down experiments.
func (rt *Runtime) SetCapacity(id hw.PUID, capacity int) {
	if n := rt.nodes[id]; n != nil && n.pu.Kind.GeneralPurpose() {
		n.capacity = capacity
	}
}

// Capacity reports the total instance capacity of all general-purpose PUs
// (the Fig 2a density metric). Alloc-free: the cluster gateway calls this
// on its scheduling hotpath.
func (rt *Runtime) Capacity() int {
	total := 0
	for _, id := range rt.order {
		total += rt.nodes[id].capacity
	}
	return total
}

// LiveInstances reports currently-placed instances across the machine.
// Alloc-free for the same reason as Capacity.
func (rt *Runtime) LiveInstances() int {
	total := 0
	for _, id := range rt.order {
		total += rt.nodes[id].liveCount
	}
	return total
}

// KillExecutor simulates an executor crash on the given PU. Warm instances
// managed by that executor are lost; the next command to the PU detects the
// failure and re-spawns the executor over XPU-Shim.
func (rt *Runtime) KillExecutor(p *sim.Proc, id hw.PUID) error {
	n := rt.nodes[id]
	if n == nil || !n.pu.Kind.GeneralPurpose() {
		return fmt.Errorf("molecule: PU %d runs no executor", id)
	}
	if id == rt.hostID {
		return fmt.Errorf("molecule: cannot kill the control-plane executor")
	}
	n.execDead = true
	// The executor's children die with it: drop the PU's warm pools, in
	// sorted function order so the teardown sequence is deterministic.
	fns := make([]string, 0, len(n.warm))
	for fn := range n.warm {
		fns = append(fns, fn)
	}
	sort.Strings(fns)
	for _, fn := range fns {
		pool := n.warm[fn]
		for _, inst := range pool {
			sandbox.DeleteOne(p, n.cr, inst.sandboxID)
			n.liveCount--
		}
		rt.warmTotal[fn] -= len(pool)
		delete(n.warm, fn)
	}
	// Specialized zygote templates are the executor's children too; the
	// generic root template survives, like the flat path's template.
	n.cr.ResetForests()
	return nil
}

// AttachFaults wires a fault plan through every layer Molecule manages: the
// interconnect (hw.Machine.Transfer), the XPU-Shim (fail-fast XPUcalls),
// and each general-purpose PU's OS and container runtime. Passing nil
// detaches everything, restoring the healthy byte-identical paths.
func (rt *Runtime) AttachFaults(pl *faults.Plan) {
	rt.faults = pl
	if pl == nil {
		rt.Machine.Faults = nil
		rt.Shim.Faults = nil
	} else {
		rt.Machine.Faults = pl
		rt.Shim.Faults = pl
		pl.Obs = rt.obs
	}
	for _, n := range rt.orderedNodes() {
		if n.os != nil {
			if pl == nil {
				n.os.Faults = nil
			} else {
				n.os.Faults = pl
			}
		}
		if n.cr != nil {
			if pl == nil {
				n.cr.Faults = nil
			} else {
				n.cr.Faults = pl
			}
		}
	}
}

// Faults returns the attached fault plan (nil on a healthy machine).
func (rt *Runtime) Faults() *faults.Plan { return rt.faults }

// puDown reports whether the fault plan has PU id crashed right now.
func (rt *Runtime) puDown(id hw.PUID) bool {
	return rt.faults != nil && id >= 0 && rt.faults.Down(id)
}

// reapCrashed evicts warm instances stranded on crashed PUs — their
// executor and sandboxes died with the PU, so serving them would hand out
// dead instances. Called on the recovery path before each attempt; pure
// bookkeeping, no virtual time charged.
func (rt *Runtime) reapCrashed(p *sim.Proc) {
	for _, n := range rt.orderedNodes() {
		if n.cr == nil || !rt.puDown(n.pu.ID) {
			continue
		}
		fns := make([]string, 0, len(n.warm))
		for fn := range n.warm {
			if len(n.warm[fn]) > 0 {
				fns = append(fns, fn)
			}
		}
		sort.Strings(fns) // map order is random; eviction order must not be
		for _, fn := range fns {
			for _, inst := range n.warm[fn] {
				sandbox.DeleteOne(p, n.cr, inst.sandboxID)
				n.liveCount--
				if o := rt.obs; o != nil {
					o.Counter("molecule_crash_evictions_total", puLabel(n.pu.ID), obs.L("fn", fn)).Inc()
				}
			}
			rt.warmTotal[fn] -= len(n.warm[fn])
			delete(n.warm, fn)
		}
		// Specialized zygote templates died with the PU; pinned nodes
		// drain first so address-space refcounts release exactly once.
		n.cr.ResetForests()
		// The executor died with its PU; it is respawned by the next
		// command once the PU revives.
		if n.pu.ID != rt.hostID {
			n.execDead = true
		}
	}
}

// ExecutorAlive reports whether the PU's executor is running.
func (rt *Runtime) ExecutorAlive(id hw.PUID) bool {
	n := rt.nodes[id]
	return n != nil && !n.execDead
}

// respawnExecutor re-creates a crashed executor through xSpawn.
func (rt *Runtime) respawnExecutor(p *sim.Proc, n *puNode) error {
	hostNode := rt.nodes[rt.hostID]
	x, err := hostNode.node.XSpawn(p, n.pu.ID, "molecule-executor", nil, nil)
	if err != nil {
		return err
	}
	n.execXPID = x
	n.execDead = false
	p.Tracef("executor on PU %d respawned as %v", n.pu.ID, x)
	return nil
}

// remoteCommand charges the control-plane cost of commanding an executor on
// PU id: free on the host, nIPC + executor handling elsewhere (Fig 10a/b:
// remote cfork adds ~1-3ms). A crashed executor is detected (command
// timeout) and respawned before the command retries. parent, when tracing,
// is the span the nIPC hop is recorded under. A command that cannot reach
// the PU — crashed endpoint, partitioned link — returns the transport
// error so the caller can fail the invocation instead of pretending the
// executor answered.
func (rt *Runtime) remoteCommand(p *sim.Proc, id hw.PUID, parent *obs.Span) error {
	if id == rt.hostID {
		return nil
	}
	n := rt.nodes[id]
	if n == nil {
		return nil
	}
	if n.execDead {
		if err := rt.respawnExecutor(p, n); err != nil {
			return err
		}
	}
	target := n.node.Host.ID // commands to virtual nodes land on their host
	if target == rt.hostID {
		return nil
	}
	sp := rt.obs.Span(parent, "nipc.command", int(target))
	_, err := rt.Machine.Transfer(p, rt.hostID, target, 256)
	if err == nil {
		p.Sleep(params.ExecutorCommandOverhead)
		_, err = rt.Machine.Transfer(p, target, rt.hostID, 128)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.Finish()
		return fmt.Errorf("molecule: command to executor on PU %d: %w", id, err)
	}
	sp.Finish()
	if o := rt.obs; o != nil {
		o.Counter("molecule_nipc_commands_total", puLabel(id)).Inc()
	}
	return nil
}

func (rt *Runtime) nextFIFO(prefix string) string {
	rt.fifoSeq++
	return fmt.Sprintf("%s-%d", prefix, rt.fifoSeq)
}

// jitter stretches or shrinks d by a deterministic pseudo-random factor in
// [1-JitterPct, 1+JitterPct], derived from a per-runtime sequence number
// (splitmix64), modeling scheduling noise while keeping runs reproducible.
func (rt *Runtime) jitter(d time.Duration) time.Duration {
	if rt.Opts.JitterPct <= 0 || d <= 0 {
		return d
	}
	rt.jitterSeq++
	z := rt.jitterSeq + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z%2001)/1000 - 1 // [-1, 1]
	return time.Duration(float64(d) * (1 + rt.Opts.JitterPct*frac))
}

// scaledDispatch is the language-runtime dispatch work per request/DAG hop
// on a PU.
func scaledDispatch(pu *hw.PU) time.Duration {
	if pu.Kind == hw.DPU {
		return params.DAGDispatchDPU
	}
	return params.DAGDispatchCPU
}

// NodeStatus is the observable state of one PU in a Snapshot.
type NodeStatus struct {
	PU            hw.PUID
	Kind          hw.PUKind
	Name          string
	Capacity      int
	Live          int
	WarmPerFunc   map[string]int
	ExecutorAlive bool
	// Busy is accumulated handler execution time; Utilization divides it by
	// elapsed virtual time.
	Busy time.Duration
	// FPGAImage lists the functions cached in the device's current image.
	FPGAImage []string
}

// Snapshot returns a structured view of the runtime's state for
// observability endpoints and tests.
func (rt *Runtime) Snapshot() []NodeStatus {
	out := make([]NodeStatus, 0, len(rt.order))
	for _, n := range rt.orderedNodes() {
		st := NodeStatus{
			PU: n.pu.ID, Kind: n.pu.Kind, Name: n.pu.Name,
			Capacity: n.capacity, Live: n.liveCount,
			ExecutorAlive: n.pu.Kind.GeneralPurpose() && !n.execDead,
			Busy:          n.busy,
		}
		if len(n.warm) > 0 {
			st.WarmPerFunc = make(map[string]int, len(n.warm))
			for fn, pool := range n.warm {
				if len(pool) > 0 {
					st.WarmPerFunc[fn] = len(pool)
				}
			}
		}
		if n.runf != nil {
			st.FPGAImage = append([]string(nil), n.fpgaVector...)
		}
		out = append(out, st)
	}
	return out
}
