package molecule

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// checkWarmTotal asserts the fn-indexed warm counter matches the actual pool
// contents — the invariant popWarm's O(1) miss path depends on.
func checkWarmTotal(t *testing.T, rt *Runtime, when string) {
	t.Helper()
	actual := map[string]int{}
	for _, n := range rt.orderedNodes() {
		for fn, pool := range n.warm {
			actual[fn] += len(pool)
		}
	}
	for fn, want := range actual {
		if got := rt.warmTotal[fn]; got != want {
			t.Errorf("%s: warmTotal[%q] = %d, want %d", when, fn, got, want)
		}
	}
	for fn, got := range rt.warmTotal {
		if got < 0 {
			t.Errorf("%s: warmTotal[%q] = %d, negative", when, fn, got)
		}
		if got != actual[fn] {
			t.Errorf("%s: warmTotal[%q] = %d but pools hold %d", when, fn, got, actual[fn])
		}
	}
}

// TestWarmTotalConsistency drives the warm pools through every mutation
// path — release, warm hit, dead-instance discard, keep-alive eviction,
// executor kill, crash reaping, undeploy — and checks the counter after
// each.
func TestWarmTotalConsistency(t *testing.T) {
	opts := DefaultOptions()
	opts.KeepWarmPerPU = 2 // small cap so admit evicts
	run(t, hw.Config{DPUs: 2}, opts, func(p *sim.Proc, rt *Runtime) {
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		for _, fn := range []string{"helloworld", "pyaes", "image-processing"} {
			if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}

		// Cold start + release, then a warm hit + release.
		for i := 0; i < 2; i++ {
			if _, err := rt.Invoke(p, "helloworld", DefaultInvokeOptions()); err != nil {
				t.Fatal(err)
			}
			checkWarmTotal(t, rt, "after invoke")
		}
		if rt.warmTotal["helloworld"] != 1 {
			t.Errorf("warmTotal[helloworld] = %d, want 1", rt.warmTotal["helloworld"])
		}

		// Keep-alive eviction: the third distinct function overflows the
		// 2-instance cap on the host and evicts the lowest-priority pool.
		for _, fn := range []string{"pyaes", "image-processing"} {
			if _, err := rt.Invoke(p, fn, DefaultInvokeOptions()); err != nil {
				t.Fatal(err)
			}
		}
		checkWarmTotal(t, rt, "after keep-alive eviction")

		// Dead-instance discard: break a pooled instance out-of-band; the
		// next acquire discards it and cold-starts.
		host := rt.nodes[rt.hostID]
		var pooled string
		for fn, pool := range host.warm {
			if len(pool) > 0 {
				pooled, pool[0].sb = fn, nil
				break
			}
		}
		if pooled == "" {
			t.Fatal("no pooled instance on the host to break")
		}
		if _, err := rt.Invoke(p, pooled, DefaultInvokeOptions()); err != nil {
			t.Fatal(err)
		}
		checkWarmTotal(t, rt, "after dead-instance discard")

		// Pinned invokes on a DPU, then an executor crash drops its pools.
		pin := DefaultInvokeOptions()
		pin.PU = dpu
		for i := 0; i < 2; i++ {
			if _, err := rt.Invoke(p, "helloworld", pin); err != nil {
				t.Fatal(err)
			}
		}
		checkWarmTotal(t, rt, "after pinned invokes")
		if err := rt.KillExecutor(p, dpu); err != nil {
			t.Fatal(err)
		}
		checkWarmTotal(t, rt, "after KillExecutor")

		// Crash reaping: repopulate the DPU, crash it, reap.
		if _, err := rt.Invoke(p, "pyaes", pin); err != nil {
			t.Fatal(err)
		}
		pl := faults.NewPlan(rt.Env, 1)
		rt.AttachFaults(pl)
		pl.Kill(dpu)
		rt.reapCrashed(p)
		checkWarmTotal(t, rt, "after reapCrashed")
		pl.Revive(dpu)
		rt.AttachFaults(nil)

		// Undeploy destroys every remaining warm instance of the function.
		if err := rt.Undeploy(p, "helloworld"); err != nil {
			t.Fatal(err)
		}
		checkWarmTotal(t, rt, "after Undeploy")
		if rt.warmTotal["helloworld"] != 0 {
			t.Errorf("warmTotal[helloworld] = %d after Undeploy, want 0", rt.warmTotal["helloworld"])
		}
	})
}

// scanGeneral is the reference placement: the pre-cache kind-then-PU-ID scan
// placeGeneral's fast path must agree with.
func scanGeneral(rt *Runtime, d *Deployment) *puNode {
	for _, kind := range generalKinds {
		if !d.SupportsKind(kind) {
			continue
		}
		for _, pu := range rt.Machine.PUsOfKind(kind) {
			n := rt.nodes[pu.ID]
			if n != nil && n.cr != nil && n.liveCount < n.capacity && !rt.puDown(pu.ID) {
				return n
			}
		}
	}
	return nil
}

// TestPlacementCacheMatchesScan checks the cached placement decision against
// the reference scan as capacity fills and PUs crash.
func TestPlacementCacheMatchesScan(t *testing.T) {
	run(t, hw.Config{DPUs: 2}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "helloworld", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		d := rt.funcs["helloworld"]
		if d.preferred == nil || d.preferred.pu.ID != rt.hostID {
			t.Fatalf("preferred node = %v, want host CPU", d.preferred)
		}
		check := func(when string) {
			t.Helper()
			want := scanGeneral(rt, d)
			got, err := rt.placeGeneral(d, -1)
			if want == nil {
				if err == nil {
					t.Errorf("%s: placeGeneral = PU %d, scan says no capacity", when, got.pu.ID)
				}
				return
			}
			if err != nil {
				t.Errorf("%s: placeGeneral error %v, scan picks PU %d", when, err, want.pu.ID)
				return
			}
			if got != want {
				t.Errorf("%s: placeGeneral = PU %d, scan = PU %d", when, got.pu.ID, want.pu.ID)
			}
		}

		check("fresh machine")

		// Preferred node full: the fast path must fall back to the scan's
		// answer (first DPU).
		hostCap := rt.nodes[rt.hostID].capacity
		rt.SetCapacity(rt.hostID, 0)
		check("host at capacity")

		// Preferred node down.
		rt.SetCapacity(rt.hostID, hostCap)
		pl := faults.NewPlan(rt.Env, 1)
		rt.AttachFaults(pl)
		pl.Kill(rt.hostID)
		check("host down")

		// Everything full or down.
		for _, pu := range rt.Machine.PUsOfKind(hw.DPU) {
			rt.SetCapacity(pu.ID, 0)
		}
		check("no capacity anywhere")
		pl.Revive(rt.hostID)
		rt.AttachFaults(nil)
		check("host revived")
	})
}

// BenchmarkInvokeWarm measures a steady-state warm invocation end to end —
// the path the O(1) warm lookup, cached placement, and interned labels are
// for.
func BenchmarkInvokeWarm(b *testing.B) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	reg := workloads.NewRegistry()
	env.Spawn("bench", func(p *sim.Proc) {
		rt, err := New(p, m, reg, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Deploy(p, "helloworld"); err != nil {
			b.Fatal(err)
		}
		opts := DefaultInvokeOptions()
		if _, err := rt.Invoke(p, "helloworld", opts); err != nil {
			b.Fatal(err) // cold start outside the timed region
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Invoke(p, "helloworld", opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	env.Run()
}
