package bench

import (
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig15",
		Title: "Serverless system design space",
		Paper: "Molecule reaches the extreme startup class (≤10ms) and the fast IPC class on BOTH same-PU and cross-PU communication",
		Run:   runFig15,
	})
}

// startupClass buckets a cold-start latency into the paper's Fig 15a
// classes.
func startupClass(d time.Duration) string {
	switch {
	case d <= 10*time.Millisecond:
		return "Extreme (<=10ms)"
	case d <= 50*time.Millisecond:
		return "Fast (~50ms)"
	case d <= time.Second:
		return "(>100ms)"
	default:
		return "Slow (>1s)"
	}
}

// commClass buckets a DAG edge latency into the Fig 15b classes.
func commClass(d time.Duration) string {
	switch {
	case d < 50*time.Microsecond:
		return "Thread/Language (Extreme)"
	case d < time.Millisecond:
		return "IPC (Fast)"
	default:
		return "Network (Slow)"
	}
}

// runFig15 reproduces the design-space positioning: the literature systems
// are placed by their published latencies; Molecule's position is measured
// live from this implementation.
func runFig15() []*metrics.Table {
	start := &metrics.Table{
		Title:  "Fig 15a — Startup design space",
		Note:   "literature systems by published numbers; Molecule measured live",
		Header: []string{"system", "mechanism", "startup", "class"},
	}
	lit := []struct {
		name, mech string
		lat        time.Duration
	}{
		{"Kata Container", "VM sandbox cold boot", 2 * time.Second},
		{"Docker", "container cold boot", 1200 * time.Millisecond},
		{"gVisor", "user-kernel sandbox boot", 1500 * time.Millisecond},
		{"FireCracker", "microVM snapshot restore", 400 * time.Millisecond},
		{"SOCK", "Zygote + cache", 50 * time.Millisecond},
		{"Replayable", "replayed execution", 45 * time.Millisecond},
		{"Catalyzer", "sandbox fork (sfork)", 2 * time.Millisecond},
	}
	for _, s := range lit {
		start.AddRow(s.name, s.mech, fd(s.lat), startupClass(s.lat))
	}
	var cfork time.Duration
	sandboxed(func(p *sim.Proc) {
		m := hw.Build(p.Env(), hw.Config{})
		os := localos.New(p.Env(), m.PU(0))
		spec, _ := lang.SpecFor(lang.Python)
		tmpl := lang.BootCold(p, os, spec, "tmpl", true)
		t0 := p.Now()
		if _, err := lang.Cfork(p, tmpl, "f", lang.CforkOptions{
			PreparedContainer: true, CpusetMutexPatch: true,
		}); err != nil {
			panic(err)
		}
		cfork = p.Now().Sub(t0)
	})
	start.AddRow("Molecule (measured)", "container fork (cfork)", fd(cfork), startupClass(cfork))

	comm := &metrics.Table{
		Title:  "Fig 15b — Communication design space",
		Header: []string{"system", "scope", "mechanism", "edge latency", "class"},
	}
	litComm := []struct {
		name, scope, mech string
		lat               time.Duration
	}{
		{"OpenWhisk", "same-PU", "network via controller", 16 * time.Millisecond},
		{"Nightcore", "same-PU", "engine + Linux FIFO", 300 * time.Microsecond},
		{"Faastlane", "same-PU", "threads in one process", 10 * time.Microsecond},
		{"Faasm", "same-PU", "shared memory + WASM", 20 * time.Microsecond},
		{"Others", "cross-PU", "network", 5 * time.Millisecond},
	}
	for _, s := range litComm {
		comm.AddRow(s.name, s.scope, s.mech, fd(s.lat), commClass(s.lat))
	}
	var local, cross time.Duration
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1}, molecule.DefaultOptions())
		pair := []string{"alexa-frontend", "alexa-interact"}
		for _, fn := range pair {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				panic(err)
			}
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		measure := func(placement []hw.PUID) time.Duration {
			rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: placement})
			res, err := rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: placement})
			if err != nil {
				panic(err)
			}
			return res.EdgeLatency[0]
		}
		local = measure([]hw.PUID{0, 0})
		cross = measure([]hw.PUID{0, dpu})
	})
	comm.AddRow("Molecule (measured)", "same-PU", "direct-connect FIFO", fd(local), commClass(local))
	comm.AddRow("Molecule (measured)", "cross-PU", "nIPC over RDMA", fd(cross), commClass(cross))
	return []*metrics.Table{start, comm}
}
