package httpd

// ClusterServer is the REST facade over a boss/worker cluster: the same
// thin-gateway idea as Server, but fronting cluster.Boss — N simulated
// machines on their own kernel domains behind one scheduler — instead of a
// single runtime. Requests serialize on the cluster simulation; each drive
// runs the sharded kernel to quiescence, so responses always reflect a
// settled cluster.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sim"
)

// ClusterServer is the REST facade over one simulated cluster.
type ClusterServer struct {
	mu      sync.Mutex
	boss    *cluster.Boss
	workers int // kernel workers per drive (0 = GOMAXPROCS)
}

// NewClusterServer builds a boss fronting `machines` simulated machines,
// each with the given hardware shape and runtime options.
func NewClusterServer(machines int, cfg hw.Config, opts molecule.Options) (*ClusterServer, error) {
	b, err := cluster.NewBoss(cluster.BossConfig{Machines: machines, HW: cfg, Opts: opts})
	if err != nil {
		return nil, err
	}
	return &ClusterServer{boss: b}, nil
}

// SetWorkers pins the kernel worker count used to drive requests (0 =
// GOMAXPROCS). Results are byte-identical at every setting.
func (s *ClusterServer) SetWorkers(n int) { s.workers = n }

// Boss exposes the underlying cluster for tests and embedding callers.
func (s *ClusterServer) Boss() *cluster.Boss { return s.boss }

// drive runs body as a client process on the boss domain and drives the
// cluster to quiescence, serialized against other requests.
func (s *ClusterServer) drive(body func(p *sim.Proc)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boss.Env.Spawn("http-client", func(p *sim.Proc) { body(p) })
	s.boss.Run(s.workers)
}

// Handler returns the HTTP routes.
func (s *ClusterServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /deploy", s.handleDeploy)
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("POST /chain", s.handleChain)
	mux.HandleFunc("GET /cluster/stats", s.handleStats)
	mux.HandleFunc("POST /cluster/drain", s.handleDrain)
	mux.HandleFunc("POST /cluster/undrain", s.handleUndrain)
	return mux
}

func (s *ClusterServer) handleDeploy(w http.ResponseWriter, r *http.Request) {
	fn := r.FormValue("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fn parameter required"))
		return
	}
	profiles, err := parseProfiles(r.FormValue("profiles"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	regErr := s.boss.Register(fn, profiles...)
	s.mu.Unlock()
	if regErr != nil {
		writeErr(w, http.StatusBadRequest, regErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"registered": fn, "profiles": r.FormValue("profiles")})
}

// ClusterInvokeResponse is the cluster /invoke reply: the single-machine
// fields plus which machine served the request.
type ClusterInvokeResponse struct {
	InvokeResponse
	Machine int `json:"machine"`
}

func (s *ClusterServer) handleInvoke(w http.ResponseWriter, r *http.Request) {
	fn := r.FormValue("fn")
	if fn == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fn parameter required"))
		return
	}
	opts := molecule.DefaultInvokeOptions()
	if v := r.FormValue("bytes"); v != "" {
		b, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad bytes %q", v))
			return
		}
		opts.Arg.Bytes = b
	}
	if v := r.FormValue("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: bad n %q", v))
			return
		}
		opts.Arg.N = n
	}

	var res molecule.Result
	var machine int
	var invErr error
	s.drive(func(p *sim.Proc) {
		res, machine, invErr = s.boss.InvokeDetailed(p, fn, opts)
	})
	if invErr != nil {
		// Saturation and dead machines are the platform's fault: 503.
		status := http.StatusBadRequest
		if errors.Is(invErr, molecule.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, invErr)
		return
	}
	writeJSON(w, http.StatusOK, ClusterInvokeResponse{
		InvokeResponse: InvokeResponse{
			Fn: res.Fn, PU: int(res.PU), Kind: res.Kind.String(), Cold: res.Cold,
			StartupMs: ms(res.Startup), ExecMs: ms(res.Exec), TotalMs: ms(res.Total),
		},
		Machine: machine,
	})
}

func (s *ClusterServer) handleChain(w http.ResponseWriter, r *http.Request) {
	raw := r.FormValue("fns")
	if raw == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpd: fns parameter required"))
		return
	}
	fns := strings.Split(raw, ",")
	var res molecule.ChainResult
	var chErr error
	s.drive(func(p *sim.Proc) { res, chErr = s.boss.InvokeChain(p, fns, molecule.ChainOptions{}) })
	if chErr != nil {
		status := http.StatusBadRequest
		if errors.Is(chErr, molecule.ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, chErr)
		return
	}
	edges := make([]float64, len(res.EdgeLatency))
	for i, e := range res.EdgeLatency {
		edges[i] = ms(e)
	}
	writeJSON(w, http.StatusOK, ChainResponse{
		Fns: fns, TotalMs: ms(res.Total), EdgeMs: edges, ColdStarts: res.ColdStarts,
	})
}

func (s *ClusterServer) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nodes := make([]map[string]any, 0)
	for _, n := range s.boss.Nodes() {
		nodes = append(nodes, map[string]any{
			"machine":  n.ID(),
			"capacity": n.Capacity(),
			"inflight": n.Inflight(),
			"served":   n.Served(),
			"stolen":   n.Stolen(),
			"down":     n.Down(),
			"draining": n.Draining(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"machines":    nodes,
		"queued":      s.boss.Queued(),
		"queued_peak": s.boss.QueuedPeak(),
		"stolen":      s.boss.Stolen(),
	})
}

// parseWorker reads the worker form value and bounds-checks it against the
// cluster via the boss's own error.
func (s *ClusterServer) parseWorker(r *http.Request) (int, error) {
	v := r.FormValue("worker")
	if v == "" {
		return 0, fmt.Errorf("httpd: worker parameter required")
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("httpd: bad worker %q", v)
	}
	return n, nil
}

func (s *ClusterServer) handleDrain(w http.ResponseWriter, r *http.Request) {
	worker, err := s.parseWorker(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opErr error
	s.drive(func(p *sim.Proc) { opErr = s.boss.Drain(worker) })
	if opErr != nil {
		writeErr(w, http.StatusBadRequest, opErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"drained": worker})
}

func (s *ClusterServer) handleUndrain(w http.ResponseWriter, r *http.Request) {
	worker, err := s.parseWorker(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var opErr error
	s.drive(func(p *sim.Proc) { opErr = s.boss.Undrain(worker) })
	if opErr != nil {
		writeErr(w, http.StatusBadRequest, opErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"undrained": worker})
}
