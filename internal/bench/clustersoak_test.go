package bench

import "testing"

// TestClusterSoakDeterministic re-runs one sweep point at several kernel
// worker counts; ClusterSoak itself fails the run unless every count
// produces the byte-identical fingerprint.
func TestClusterSoakDeterministic(t *testing.T) {
	r, err := ClusterSoak(2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Requests == 0 {
		t.Fatal("soak produced no requests")
	}
	if r.Errors != 0 {
		t.Fatalf("soak produced %d errors", r.Errors)
	}
}

// TestClusterSoakSweepScales pins the headline scaling claim: the checked-in
// sweep config must reach at least 2.5x virtual-time throughput at four
// machines versus one. Everything here is virtual-time arithmetic, so the
// assertion is exact and reproducible, not a wall-clock flake.
func TestClusterSoakSweepScales(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep skipped in -short mode")
	}
	res, err := ClusterSoakSweep([]int{1, 2, 4}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	last := res[len(res)-1]
	if last.Speedup < 2.5 {
		t.Fatalf("4-machine speedup = %.2f, want >= 2.5", last.Speedup)
	}
	for _, r := range res {
		if r.Errors != 0 {
			t.Fatalf("machines=%d: %d errors", r.Machines, r.Errors)
		}
	}
}
