package ocicli

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

// FuzzExecute feeds arbitrary command lines to the OCI shell; it must never
// panic and never leave the simulation deadlocked.
func FuzzExecute(f *testing.F) {
	for _, seed := range []string{
		"create a:f", "start a", "state a,b,c", "kill a 9", "delete a",
		"create a:f,b:g lang=nodejs", "", "# comment", "create :", "kill a x",
		"state", "start ,,,", "create a:f,a:f",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		env := sim.NewEnv()
		m := hw.Build(env, hw.Config{})
		sh := New(sandbox.NewContainerRuntime(localos.New(env, m.PU(0))))
		env.Spawn("fuzz", func(p *sim.Proc) {
			sh.Execute(p, line) // errors fine; panics are not
		})
		env.Run()
	})
}
