package obs

import (
	"reflect"
	"testing"
	"time"
)

// TestSketchIdentityBuckets pins the exact region: durations below 32ns map
// to their own bucket and quantile answers there are exact.
func TestSketchIdentityBuckets(t *testing.T) {
	for i := 0; i < sketchIdentity; i++ {
		d := time.Duration(i)
		if got := sketchIndex(d); got != i {
			t.Fatalf("sketchIndex(%d) = %d, want %d", i, got, i)
		}
		if got := sketchUpper(i); got != d {
			t.Fatalf("sketchUpper(%d) = %v, want %v", i, got, d)
		}
	}
}

// TestSketchGeometry pins the log-linear contract: upper bounds bracket the
// value with relative error <= 1/16, and indices are monotone.
func TestSketchGeometry(t *testing.T) {
	cases := []time.Duration{ // ascending, for the monotonicity check
		32, 33, 63, 64, 100, time.Microsecond, 1023, 1024, 1025,
		time.Millisecond, 2500 * time.Microsecond,
		17 * time.Millisecond, time.Second,
		time.Duration(1) << 40, time.Duration(1)<<40 + 1, // ~18.3min
		time.Hour, 24 * time.Hour,
	}
	prevIdx := -1
	for _, d := range cases {
		idx := sketchIndex(d)
		if idx < 0 || idx >= sketchBuckets {
			t.Fatalf("sketchIndex(%v) = %d out of range", d, idx)
		}
		if idx < prevIdx {
			t.Fatalf("sketchIndex not monotone at %v: %d < %d", d, idx, prevIdx)
		}
		prevIdx = idx
		ub := sketchUpper(idx)
		if ub < d {
			t.Fatalf("sketchUpper(%v) = %v below the value", d, ub)
		}
		if d >= sketchIdentity && ub-d > d/16 {
			t.Fatalf("sketchUpper(%v) = %v exceeds 1/16 relative error", d, ub)
		}
	}
}

// TestSketchOrderInvariant: the same multiset of observations yields
// identical sketch state regardless of arrival order — the property that
// makes quantiles byte-comparable across shard worker counts.
func TestSketchOrderInvariant(t *testing.T) {
	var fwd, rev Sketch
	for i := 1; i <= 1000; i++ {
		fwd.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 1000; i >= 1; i-- {
		rev.Observe(time.Duration(i) * time.Millisecond)
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Fatal("sketch state depends on observation order")
	}
}

// TestSketchMergeExact: merge(sketch(A), sketch(B)) == sketch(A ∪ B),
// exactly — the mergeability contract per-shard rollups need.
func TestSketchMergeExact(t *testing.T) {
	var whole, a, b Sketch
	for i := 1; i <= 400; i++ {
		d := time.Duration(i) * 137 * time.Microsecond
		whole.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	a.Merge(&b)
	if !reflect.DeepEqual(whole, a) {
		t.Fatal("merged sketch differs from the directly-observed union")
	}
}

// TestSketchQuantileBounds: quantile answers are upper bounds within 1/16
// relative error, and q=1 returns the exact maximum.
func TestSketchQuantileBounds(t *testing.T) {
	var s Sketch
	for i := 1; i <= 1000; i++ {
		s.Observe(time.Duration(i) * time.Millisecond)
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		exact := time.Duration(int(q*1000+0.9999)) * time.Millisecond // nearest rank
		got := s.Quantile(q)
		if got < exact {
			t.Errorf("Quantile(%v) = %v below the exact value %v", q, got, exact)
		}
		if got-exact > exact/16 {
			t.Errorf("Quantile(%v) = %v exceeds 1/16 error vs %v", q, got, exact)
		}
	}
	if got := s.Quantile(1); got != 1000*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want the exact max 1s", got)
	}
	if s.Count() != 1000 || s.Max() != 1000*time.Millisecond {
		t.Errorf("count/max = %d/%v", s.Count(), s.Max())
	}
}

// TestSketchEdgeValues: zero, negative (clamped), and near-overflow
// durations must not panic or return nonsense.
func TestSketchEdgeValues(t *testing.T) {
	var s Sketch
	s.Observe(0)
	s.Observe(-5 * time.Second) // clamps to bucket 0
	if s.Count() != 2 || s.Max() != 0 {
		t.Fatalf("count/max = %d/%v", s.Count(), s.Max())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile over zero/negative = %v, want 0", got)
	}
	huge := time.Duration(1<<62 + 12345) // top octave: upper bound would overflow
	s.Observe(huge)
	if got := s.Quantile(1); got != huge {
		t.Fatalf("top-octave quantile = %v, want clamp to max %v", got, huge)
	}

	var nilSketch *Sketch
	nilSketch.Observe(time.Second)
	nilSketch.Merge(&s)
	if nilSketch.Count() != 0 || nilSketch.Quantile(0.5) != 0 || nilSketch.Max() != 0 || nilSketch.Sum() != 0 {
		t.Fatal("nil sketch is not inert")
	}
}
