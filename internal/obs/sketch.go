package obs

import (
	"math/bits"
	"time"
)

// Sketch bucket geometry: durations below 32ns map to their own bucket
// (identity), everything above lands in one of 16 sub-buckets per power of
// two. With int64 nanosecond durations the largest exponent is 62, so the
// array is fixed and small and the worst-case relative error is 1/16.
const (
	sketchIdentity = 32 // exact buckets for 0..31ns
	sketchSubBits  = 4  // 16 sub-buckets per octave
	sketchBuckets  = sketchIdentity + (63-5)*(1<<sketchSubBits)
)

// Sketch is a deterministic, mergeable quantile sketch over virtual-time
// durations: a fixed log-linear bucket array (DDSketch-style geometry with
// integer arithmetic only). Two properties matter here and rule out
// sampling sketches (t-digest, reservoir):
//
//   - Deterministic: bucket placement is a pure function of the value, so
//     the same multiset of observations yields identical state regardless
//     of arrival order, worker count, or shard partitioning — quantiles
//     can be byte-compared across runs.
//   - Mergeable: Merge is element-wise addition, and
//     merge(sketch(A), sketch(B)) == sketch(A ∪ B) exactly. Per-shard or
//     per-machine sketches roll up without error, which is what the
//     cluster boss/worker design needs.
//
// Quantile answers are upper bounds with relative error <= 1/16, clamped
// to the observed maximum. A nil *Sketch no-ops, like every obs type.
type Sketch struct {
	counts [sketchBuckets]int64
	n      int64
	sum    time.Duration
	max    time.Duration
}

// sketchIndex maps a duration to its bucket. Negative durations clamp to 0.
func sketchIndex(d time.Duration) int {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	if v < sketchIdentity {
		return int(v)
	}
	e := bits.Len64(v) - 1 // >= 5
	sub := (v >> (uint(e) - sketchSubBits)) & (1<<sketchSubBits - 1)
	return sketchIdentity + (e-5)*(1<<sketchSubBits) + int(sub)
}

// sketchUpper returns the largest duration mapping to bucket i (the
// quantile answer for that bucket).
func sketchUpper(i int) time.Duration {
	if i < sketchIdentity {
		return time.Duration(i)
	}
	i -= sketchIdentity
	e := uint(i>>sketchSubBits) + 5
	sub := uint64(i & (1<<sketchSubBits - 1))
	return time.Duration((1<<sketchSubBits+sub+1)<<(e-sketchSubBits) - 1)
}

// Observe records one duration. Nil-safe.
func (s *Sketch) Observe(d time.Duration) {
	if s == nil {
		return
	}
	s.counts[sketchIndex(d)]++
	s.n++
	s.sum += d
	if d > s.max {
		s.max = d
	}
}

// Count returns the number of observations (0 on nil).
func (s *Sketch) Count() int64 {
	if s == nil {
		return 0
	}
	return s.n
}

// Sum returns the total observed time (0 on nil).
func (s *Sketch) Sum() time.Duration {
	if s == nil {
		return 0
	}
	return s.sum
}

// Max returns the largest observation (0 on nil or empty).
func (s *Sketch) Max() time.Duration {
	if s == nil {
		return 0
	}
	return s.max
}

// Merge folds other into s: element-wise count addition, exactly
// equivalent to having observed other's values directly. Nil-safe on both
// sides.
func (s *Sketch) Merge(other *Sketch) {
	if s == nil || other == nil {
		return
	}
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.n += other.n
	s.sum += other.sum
	if other.max > s.max {
		s.max = other.max
	}
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1), nearest
// rank over the bucket CDF, clamped to the observed maximum. Returns 0
// with no observations. Nil-safe.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s == nil || s.n == 0 {
		return 0
	}
	rank := int64(q * float64(s.n))
	if float64(rank) < q*float64(s.n) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	cum := int64(0)
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			if ub := sketchUpper(i); ub >= 0 && ub < s.max {
				return ub // top-octave upper bounds can overflow; max covers those
			}
			return s.max
		}
	}
	return s.max
}
