package molecule

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/sim"
)

func zygoteOpts() Options {
	opts := DefaultOptions()
	opts.ZygoteTree = true
	opts.ZygoteFitInterval = 8
	return opts
}

// TestZygoteColdStartGetsCheaper: once the fitter has seen the import mix,
// a cold start forks from a package ancestor and pays only the residual —
// strictly cheaper than the first, fully generic cold start.
func TestZygoteColdStartGetsCheaper(t *testing.T) {
	run(t, hw.Config{}, zygoteOpts(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		var first, last time.Duration
		for i := 0; i < 12; i++ {
			res, err := rt.Invoke(p, "matmul", InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = res.Startup
			}
			last = res.Startup
			// Yield through a sleep so the background fit proc can run
			// between cold starts, as it would under real traffic.
			p.Sleep(10 * time.Millisecond)
		}
		if last >= first {
			t.Errorf("cold start never improved: first %v, last %v", first, last)
		}
		d := rt.funcs["matmul"]
		saving := d.Pkgs.ImportCost()
		if got := first - last; got < saving {
			t.Errorf("fitted cold start saved %v, want at least the closure import %v", got, saving)
		}
		tree := rt.ContainerRuntimeOn(0).Forest(lang.Python)
		if tree == nil || tree.LiveNodes() == 0 {
			t.Fatal("no specialized template grew")
		}
		if tree.Rounds() == 0 {
			t.Error("fitter never ran")
		}
	})
}

// TestZygoteDisabledMatchesFlatCfork: with the tree off, cold starts cost
// exactly what the flat cfork path costs — the default path is untouched.
func TestZygoteDisabledMatchesFlatCfork(t *testing.T) {
	coldStartup := func(opts Options) time.Duration {
		var d time.Duration
		run(t, hw.Config{}, opts, func(p *sim.Proc, rt *Runtime) {
			if err := rt.Deploy(p, "pyaes"); err != nil {
				t.Fatal(err)
			}
			res, err := rt.Invoke(p, "pyaes", InvokeOptions{PU: -1, ForceCold: true})
			if err != nil {
				t.Fatal(err)
			}
			d = res.Startup
		})
		return d
	}
	flat := coldStartup(DefaultOptions())
	disabled := DefaultOptions()
	disabled.ZygoteTree = false
	if got := coldStartup(disabled); got != flat {
		t.Errorf("zygote-off cold start %v != flat cfork %v", got, flat)
	}
	// A root-only forest (no budget) pays closure + private tail = exactly
	// DepImport, the same bill as a cfork from a *generic* template. That
	// calibration makes the bench's flat arm a true generic-cfork baseline.
	generic := DefaultOptions()
	generic.GenericTemplates = true
	genericFlat := coldStartup(generic)
	rootOnly := zygoteOpts()
	rootOnly.ZygoteBudgetMB = -1
	if got := coldStartup(rootOnly); got > genericFlat {
		t.Errorf("root-only zygote cold start %v worse than generic flat cfork %v", got, genericFlat)
	}
}

// TestZygoteExecutorCrashResetsForest: killing a PU's executor must retire
// every specialized template on it (their processes died with the
// executor's OS state), leak nothing, and let the forest regrow.
func TestZygoteExecutorCrashResetsForest(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, zygoteOpts(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul", DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
			t.Fatal(err)
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		for i := 0; i < 12; i++ {
			if _, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu, ForceCold: true}); err != nil {
				t.Fatal(err)
			}
			p.Sleep(10 * time.Millisecond)
		}
		tree := rt.ContainerRuntimeOn(dpu).Forest(lang.Python)
		if tree == nil || tree.LiveNodes() == 0 {
			t.Fatal("no specialized template grew on the DPU")
		}
		if err := rt.KillExecutor(p, dpu); err != nil {
			t.Fatal(err)
		}
		if tree.LiveNodes() != 0 {
			t.Errorf("%d specialized templates survived the executor crash", tree.LiveNodes())
		}
		if tree.LeakedNodes() != 0 {
			t.Errorf("%d templates leaked across the crash", tree.LeakedNodes())
		}
		// The next request transparently respawns and regrows.
		res, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Error("post-crash request not a cold start")
		}
	})
}

// TestZygoteChaosSoakNoTemplateLeak: repeated kill/invoke rounds with the
// fitter racing executor crashes must never leak a template (a retired node
// whose process survived) or corrupt the forest's page accounting.
func TestZygoteChaosSoakNoTemplateLeak(t *testing.T) {
	run(t, hw.Config{DPUs: 1}, zygoteOpts(), func(p *sim.Proc, rt *Runtime) {
		fns := []string{"matmul", "image-resize", "pyaes", "linpack"}
		for _, fn := range fns {
			if err := rt.Deploy(p, fn, DefaultProfile(hw.CPU), DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		rng := uint64(1)
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % n
		}
		for round := 0; round < 6; round++ {
			for i := 0; i < 10; i++ {
				pin := hw.PUID(-1)
				if i%3 == 0 {
					pin = dpu
				}
				if _, err := rt.Invoke(p, fns[next(len(fns))], InvokeOptions{PU: pin, ForceCold: true}); err != nil {
					t.Fatal(err)
				}
				p.Sleep(5 * time.Millisecond)
			}
			// Crash the DPU executor mid-traffic; in some rounds this lands
			// while a fit proc is growing a template there.
			if err := rt.KillExecutor(p, dpu); err != nil {
				t.Fatal(err)
			}
			p.Sleep(20 * time.Millisecond)
			for _, id := range []hw.PUID{0, dpu} {
				cr := rt.ContainerRuntimeOn(id)
				if cr == nil {
					continue
				}
				for _, kind := range []lang.Kind{lang.Python, lang.Node} {
					tree := cr.Forest(kind)
					if tree == nil {
						continue
					}
					if leaked := tree.LeakedNodes(); leaked != 0 {
						t.Fatalf("round %d: PU %d %s forest leaked %d templates", round, id, kind, leaked)
					}
					if tree.UsedPages() < 0 {
						t.Fatalf("round %d: PU %d %s forest pages went negative", round, id, kind)
					}
				}
			}
		}
		// Traffic still flows after six crashes.
		if _, err := rt.Invoke(p, "matmul", InvokeOptions{PU: dpu}); err != nil {
			t.Fatal(err)
		}
	})
}
