// Package sandbox implements the paper's second key abstraction: the
// vectorized sandbox (§3.5, Table 3).
//
// The classic OCI runtime interface has five verbs — state, create, start,
// kill, delete — each operating on one sandbox. The vectorized extension
// makes every verb accept a vector, which is what lets domain-specific
// accelerators participate: an FPGA can only hold one image at a time, so
// runf packs a *vector* of instances into one image, making cache hits (and
// therefore warm starts) possible, and deletes become free because the next
// create replaces the hardware configuration anyway.
//
// Three runtimes implement the abstraction:
//
//   - ContainerRuntime — runc-style containers for CPU and DPU functions,
//     extended with cfork (always passed one-sized vectors, like the paper's
//     modified runc);
//   - RunF — FPGA functions over the hw.FPGADevice model;
//   - RunG — GPU kernels (the §6.8 generality demonstration).
package sandbox

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/sim"
)

// State is a sandbox lifecycle state.
type State int

const (
	StateUnknown State = iota
	StateCreated
	StateRunning
	StateStopped
	StateDeleted
)

var stateNames = map[State]string{
	StateUnknown: "unknown", StateCreated: "created", StateRunning: "running",
	StateStopped: "stopped", StateDeleted: "deleted",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Spec describes one sandbox to create: the vectorized create verb takes a
// vector of these (Table 3: create vector<sandbox, func-id>).
type Spec struct {
	ID     string
	FuncID string
	// Lang selects the language runtime for container sandboxes.
	Lang lang.Kind
	// Pkgs is the function's dependency-closed package manifest. When the
	// container runtime runs a zygote forest, Start forks from the deepest
	// template covering this set; otherwise the field is ignored.
	Pkgs lang.PkgSet
}

// Status pairs a sandbox ID with its state (Table 3: state vector<...>).
type Status struct {
	ID    string
	State State
}

// Runtime is the vectorized sandbox abstraction. Every PU-specific sandbox
// runtime implements exactly this interface, which is all a serverless
// runtime needs to manage heterogeneous functions without knowing the
// underlying hardware or software (§3.5).
type Runtime interface {
	// Create instantiates a vector of sandboxes in one operation.
	Create(p *sim.Proc, specs []Spec) error
	// Start runs a vector of created sandboxes concurrently.
	Start(p *sim.Proc, ids []string) error
	// Kill delivers a signal to a vector of sandboxes.
	Kill(p *sim.Proc, ids []string, sig int) error
	// Delete removes a vector of sandboxes.
	Delete(p *sim.Proc, ids []string) error
	// State queries a vector of sandboxes (pass nil for all).
	State(ids []string) []Status
}

// CreateOne adapts the single-sandbox OCI verb onto the vectorized
// interface by passing a one-sized vector (exactly how the paper adapts
// Docker runc, §5).
func CreateOne(p *sim.Proc, r Runtime, spec Spec) error {
	return r.Create(p, []Spec{spec})
}

// StartOne starts a single sandbox.
func StartOne(p *sim.Proc, r Runtime, id string) error {
	return r.Start(p, []string{id})
}

// KillOne signals a single sandbox.
func KillOne(p *sim.Proc, r Runtime, id string, sig int) error {
	return r.Kill(p, []string{id}, sig)
}

// DeleteOne deletes a single sandbox.
func DeleteOne(p *sim.Proc, r Runtime, id string) error {
	return r.Delete(p, []string{id})
}

// StateOne queries a single sandbox's status.
func StateOne(r Runtime, id string) Status {
	sts := r.State([]string{id})
	if len(sts) == 0 {
		return Status{ID: id, State: StateUnknown}
	}
	return sts[0]
}
