package sandbox_test

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sandbox"
	"repro/internal/sim"
)

// The vectorized create packs three FPGA functions into one image with a
// single flush; delete is free because the next create replaces the
// configuration anyway (Table 3).
func ExampleRunF() {
	env := sim.NewEnv()
	machine := hw.Build(env, hw.Config{FPGAs: 1})
	rf, err := sandbox.NewRunF(machine, machine.PUsOfKind(hw.FPGA)[0], machine.PU(0))
	if err != nil {
		fmt.Println(err)
		return
	}

	env.Spawn("runtime", func(p *sim.Proc) {
		rf.Create(p, []sandbox.Spec{
			{ID: "a", FuncID: "madd"},
			{ID: "b", FuncID: "mmult"},
			{ID: "c", FuncID: "mscale"},
		})
		rf.Start(p, []string{"a", "b", "c"})
		programs, _ := rf.Device().ProgramCounts()
		fmt.Printf("3 sandboxes running after %d flush(es), at t=%v\n", programs, p.Now())

		before := p.Now()
		rf.Delete(p, []string{"b"})
		fmt.Printf("delete took %v; mmult still on fabric: %v\n",
			p.Now().Sub(before), rf.Cached("mmult"))
	})
	env.Run()
	// Output:
	// 3 sandboxes running after 1 flush(es), at t=3.8s
	// delete took 0s; mmult still on fabric: true
}
