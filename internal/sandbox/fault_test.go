package sandbox

import (
	"errors"
	"testing"

	"repro/internal/lang"
	"repro/internal/sim"
)

type failingCreates struct{ err error }

func (f failingCreates) CreateFault() error { return f.err }

func TestCreateFault(t *testing.T) {
	env, cr := cpuRig()
	injected := errors.New("boom")
	env.Spawn("test", func(p *sim.Proc) {
		cr.Prewarm(p, 2)
		cr.Faults = failingCreates{err: injected}
		if err := CreateOne(p, cr, Spec{ID: "a", FuncID: "f", Lang: lang.Python}); !errors.Is(err, injected) {
			t.Errorf("Create err = %v, want injected fault", err)
		}
		// The fault fires before the pool is touched: the prepared
		// containers survive for the retry.
		if got := cr.PoolSize(); got != 2 {
			t.Errorf("pool size after injected failure = %d, want 2", got)
		}
		if _, ok := cr.sandboxes["a"]; ok {
			t.Error("failed create registered a sandbox")
		}
		cr.Faults = failingCreates{} // inert injector: create succeeds
		if err := CreateOne(p, cr, Spec{ID: "a", FuncID: "f", Lang: lang.Python}); err != nil {
			t.Errorf("create with inert injector: %v", err)
		}
		if got := cr.PoolSize(); got != 1 {
			t.Errorf("pool size after successful create = %d, want 1", got)
		}
	})
	env.Run()
}
