package molecule

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
)

// Billing is the pay-as-you-go ledger: invocations are charged per started
// millisecond (the 1ms granularity the paper cites from AWS) at the
// profile's PU-specific rate.
type Billing struct {
	entries []BillEntry
}

// BillEntry is one charged invocation.
type BillEntry struct {
	Fn       string
	Kind     hw.PUKind
	Duration time.Duration
	BilledMs int64
	Charge   float64
}

// NewBilling returns an empty ledger.
func NewBilling() *Billing { return &Billing{} }

// Record charges one invocation.
func (b *Billing) Record(fn string, kind hw.PUKind, d time.Duration, pricePerMs float64) {
	ms := int64(math.Ceil(float64(d) / float64(time.Millisecond)))
	if ms < 1 {
		ms = 1
	}
	b.entries = append(b.entries, BillEntry{
		Fn: fn, Kind: kind, Duration: d, BilledMs: ms, Charge: float64(ms) * pricePerMs,
	})
}

// Entries returns all charges.
func (b *Billing) Entries() []BillEntry { return b.entries }

// Total returns the summed charge.
func (b *Billing) Total() float64 {
	t := 0.0
	for _, e := range b.entries {
		t += e.Charge
	}
	return t
}

// TotalFor returns the summed charge for one function.
func (b *Billing) TotalFor(fn string) float64 {
	t := 0.0
	for _, e := range b.entries {
		if e.Fn == fn {
			t += e.Charge
		}
	}
	return t
}

// Report renders the ledger as a per-function, per-PU summary table.
func (b *Billing) Report() *metrics.Table {
	type key struct {
		fn   string
		kind hw.PUKind
	}
	type agg struct {
		count    int
		billedMs int64
		charge   float64
	}
	sums := make(map[key]*agg)
	for _, e := range b.entries {
		k := key{e.Fn, e.Kind}
		a := sums[k]
		if a == nil {
			a = &agg{}
			sums[k] = a
		}
		a.count++
		a.billedMs += e.BilledMs
		a.charge += e.Charge
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fn != keys[j].fn {
			return keys[i].fn < keys[j].fn
		}
		return keys[i].kind < keys[j].kind
	})
	t := &metrics.Table{
		Title:  "Billing ledger (pay-as-you-go, 1ms granularity)",
		Header: []string{"function", "PU", "invocations", "billed ms", "charge"},
	}
	for _, k := range keys {
		a := sums[k]
		t.AddRow(k.fn, k.kind.String(), fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%d", a.billedMs), fmt.Sprintf("%.2f", a.charge))
	}
	t.AddRow("TOTAL", "", fmt.Sprintf("%d", len(b.entries)), "", fmt.Sprintf("%.2f", b.Total()))
	return t
}
