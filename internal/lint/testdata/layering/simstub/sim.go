// Stand-in for repro/internal/sim in layering fixtures.
package sim

func Noop() {}
