package mystery // want `not in the moleculelint layer table`

func Noop() {}
