package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMapUnmap(t *testing.T) {
	as := NewAddressSpace()
	start := as.Map(10)
	if as.RSSPages() != 10 {
		t.Fatalf("RSS = %d, want 10", as.RSSPages())
	}
	as.Unmap(start, 4)
	if as.RSSPages() != 6 {
		t.Fatalf("RSS after unmap = %d, want 6", as.RSSPages())
	}
	as.Unmap(start, 10) // partially already unmapped; must not panic
	if as.RSSPages() != 0 {
		t.Fatalf("RSS = %d, want 0", as.RSSPages())
	}
}

func TestMapReturnsDisjointRuns(t *testing.T) {
	as := NewAddressSpace()
	a := as.Map(5)
	b := as.Map(5)
	if b < a+5 {
		t.Fatalf("second run %d overlaps first [%d,%d)", b, a, a+5)
	}
}

func TestForkSharesAllPages(t *testing.T) {
	parent := NewAddressSpace()
	parent.Map(100)
	child := parent.Fork()
	if child.RSSPages() != 100 {
		t.Fatalf("child RSS = %d, want 100", child.RSSPages())
	}
	if got := child.PSSPages(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("child PSS = %v, want 50 (all pages shared by 2)", got)
	}
	if parent.SharedPages() != 100 || child.SharedPages() != 100 {
		t.Fatal("fork did not share pages")
	}
}

func TestWriteBreaksCOW(t *testing.T) {
	parent := NewAddressSpace()
	start := parent.Map(10)
	child := parent.Fork()
	faults := child.Write(start, 4)
	if faults != 4 {
		t.Fatalf("faults = %d, want 4", faults)
	}
	// Child now has 4 private + 6 shared; PSS = 4 + 6/2 = 7.
	if got := child.PSSPages(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("child PSS = %v, want 7", got)
	}
	if got := parent.PSSPages(); math.Abs(got-7) > 1e-9 {
		t.Fatalf("parent PSS = %v, want 7", got)
	}
	// Second write to the same pages: no further faults.
	if faults := child.Write(start, 4); faults != 0 {
		t.Fatalf("re-write faults = %d, want 0", faults)
	}
}

func TestWriteUnmappedDemandPages(t *testing.T) {
	as := NewAddressSpace()
	faults := as.Write(1000, 3)
	if faults != 3 {
		t.Fatalf("demand faults = %d, want 3", faults)
	}
	if as.RSSPages() != 3 {
		t.Fatalf("RSS = %d, want 3", as.RSSPages())
	}
	// Subsequent Map must not collide with demand-paged region.
	v := as.Map(2)
	if v < 1003 {
		t.Fatalf("Map returned %d inside demand-paged region", v)
	}
}

func TestReleaseDropsSharing(t *testing.T) {
	parent := NewAddressSpace()
	parent.Map(20)
	child := parent.Fork()
	child.Release()
	if child.RSSPages() != 0 {
		t.Fatal("release left pages mapped")
	}
	if got := parent.PSSPages(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("parent PSS after child release = %v, want 20", got)
	}
}

func TestMultiForkPSS(t *testing.T) {
	tmpl := NewAddressSpace()
	tmpl.Map(100)
	children := make([]*AddressSpace, 4)
	for i := range children {
		children[i] = tmpl.Fork()
	}
	// 5 sharers total: each PSS = 100/5 = 20.
	for i, c := range children {
		if got := c.PSSPages(); math.Abs(got-20) > 1e-9 {
			t.Fatalf("child %d PSS = %v, want 20", i, got)
		}
	}
}

// Property: RSS(parent)+RSS(child) is invariant under writes, and the sum of
// PSS over all address spaces sharing pages equals the number of distinct
// physical pages.
func TestPSSConservationProperty(t *testing.T) {
	f := func(nPages uint8, writes []uint8) bool {
		n := int(nPages%64) + 1
		parent := NewAddressSpace()
		start := parent.Map(n)
		child := parent.Fork()
		grandchild := child.Fork()
		spaces := []*AddressSpace{parent, child, grandchild}
		physical := float64(n) // distinct physical pages so far
		for i, w := range writes {
			target := spaces[i%3]
			vpn := start + int(w)%n
			physical += float64(target.Write(vpn, 1))
		}
		var pssSum float64
		for _, s := range spaces {
			pssSum += s.PSSPages()
		}
		return math.Abs(pssSum-physical) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: forking never changes the parent's RSS, and the child's RSS
// always equals the parent's at fork time.
func TestForkRSSProperty(t *testing.T) {
	f := func(nPages uint8) bool {
		n := int(nPages)%128 + 1
		parent := NewAddressSpace()
		parent.Map(n)
		before := parent.RSSPages()
		child := parent.Fork()
		return parent.RSSPages() == before && child.RSSPages() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Release must be idempotent: keep-alive eviction and fork-error cleanup can
// both reach a template instance's teardown, and a double decrement would
// corrupt every sharer's refcounts (PSS drifts, later Releases underflow).
func TestReleaseIdempotent(t *testing.T) {
	parent := NewAddressSpace()
	parent.Map(100)
	child := parent.Fork()
	if parent.PSSPages() != 50 {
		t.Fatalf("shared PSS = %v, want 50", parent.PSSPages())
	}
	child.Release()
	if !child.Released() {
		t.Error("child not marked released")
	}
	child.Release() // second call must be a no-op
	child.Release()
	if got := parent.PSSPages(); got != 100 {
		t.Errorf("parent PSS after double release = %v, want 100", got)
	}
	if got := parent.RSSPages(); got != 100 {
		t.Errorf("parent RSS after double release = %v, want 100", got)
	}
	// A released space is reusable: mapping in fresh pages revives it.
	child.Map(10)
	if child.Released() {
		t.Error("mapped space still marked released")
	}
	if got := child.PSSPages(); got != 10 {
		t.Errorf("revived child PSS = %v, want 10", got)
	}
}

// Release on a revived space must drop only the new mappings.
func TestReleaseReviveRelease(t *testing.T) {
	parent := NewAddressSpace()
	parent.Map(64)
	child := parent.Fork()
	child.Release()
	child.Map(8)
	child.Release()
	if got := parent.PSSPages(); got != 64 {
		t.Errorf("parent PSS = %v, want 64", got)
	}
	if got := child.RSSPages(); got != 0 {
		t.Errorf("child RSS = %v, want 0", got)
	}
}

// Fork is on the template fan-out hot path: pin its allocation count so a
// refcount-layout change cannot silently turn cold starts quadratic.
func TestForkAllocsPinned(t *testing.T) {
	tmpl := NewAddressSpace()
	tmpl.Map(3072)
	tmpl.Write(0, 3072)
	allocs := testing.AllocsPerRun(200, func() {
		c := tmpl.Fork()
		c.Release()
	})
	// One alloc for the AddressSpace, one for its mapping slice.
	if allocs > 2 {
		t.Errorf("Fork+Release = %.1f allocs, want <= 2", allocs)
	}
}
