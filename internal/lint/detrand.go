package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DetRand forbids nondeterministic randomness in simulation-facing packages.
// The global math/rand generator is seeded from the wall clock and shared
// across goroutines, so two runs (or two -parallel settings) diverge; and
// crypto/rand is nondeterministic by construction. Randomness must flow from
// an explicit seeded source — rand.New(rand.NewSource(seed)) — threaded
// through the call graph, the way internal/faults and internal/loadgen do.
// The constructors New, NewSource, and NewZipf are therefore allowed; every
// other package-level math/rand function (Intn, Float64, Shuffle, Seed, ...)
// consults hidden global state and is flagged.
var DetRand = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      "forbid unseeded global math/rand and crypto/rand in simulation-facing packages; thread a seeded *rand.Rand",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetRand,
}

// seededConstructors are the math/rand functions that build an explicit
// source instead of consulting the global one.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	layer, ok := classify(pass.Pkg.Path())
	if !ok || !layer.Sim {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.ImportSpec)(nil), (*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		if isTestFile(pass, pass.Fset.Position(n.Pos()).Filename) {
			return
		}
		switch n := n.(type) {
		case *ast.ImportSpec:
			path, err := strconv.Unquote(n.Path.Value)
			if err == nil && path == "crypto/rand" {
				pass.Reportf(n.Pos(),
					"crypto/rand in simulation package %s: simulation randomness must be seed-reproducible; use a seeded *math/rand.Rand",
					pass.Pkg.Path())
			}
		case *ast.SelectorExpr:
			fn, isFn := pass.TypesInfo.Uses[n.Sel].(*types.Func)
			if !isFn || fn.Pkg() == nil {
				return
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return
			}
			// Only package-level functions touch the hidden global state;
			// methods on an explicit *rand.Rand are exactly what we want.
			if fn.Type().(*types.Signature).Recv() != nil {
				return
			}
			if seededConstructors[fn.Name()] {
				return
			}
			pass.Reportf(n.Pos(),
				"global rand.%s in simulation package %s: thread a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead",
				fn.Name(), pass.Pkg.Path())
		}
	})
	return nil, nil
}
