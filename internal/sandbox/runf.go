package sandbox

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hw"
	"repro/internal/params"
	"repro/internal/sim"
)

// ErasePolicy selects what happens to the old fabric configuration when a
// new image is flushed.
type ErasePolicy int

const (
	// EraseAlways erases the fabric before every program — the naive OCI
	// mapping (Fig 10c "Baseline").
	EraseAlways ErasePolicy = iota
	// NoErase skips erasing: the next image replaces the configuration
	// directly, which is safe because flushed functions hold no resources
	// (Fig 10c "No-Erase", Molecule's default).
	NoErase
)

// FPGASandbox is one FPGA function instance within the current image.
type FPGASandbox struct {
	Spec     Spec
	State    State
	Prepared bool // software sandbox warmed (Fig 10c "Warm-sandbox")
}

// RunF is the FPGA sandbox runtime (§3.5). It maintains FPGA instance
// states, programs vectorized images, and executes kernels. Create is
// vectorized: the whole spec vector is synthesized into one image and
// flushed in a single programming operation, so later requests for any
// member are warm. Delete only updates state — the real destroy happens at
// the next create, which replaces the hardware configuration.
type RunF struct {
	Machine *hw.Machine
	PU      *hw.PU // the FPGA
	Host    *hw.PU // general-purpose PU driving the device (DMA endpoint)
	Policy  ErasePolicy

	sandboxes map[string]*FPGASandbox
}

// NewRunF returns an FPGA sandbox runtime for the given device.
func NewRunF(m *hw.Machine, fpga, host *hw.PU) (*RunF, error) {
	if fpga.Device == nil {
		return nil, fmt.Errorf("sandbox: PU %q is not an FPGA", fpga.Name)
	}
	return &RunF{
		Machine:   m,
		PU:        fpga,
		Host:      host,
		Policy:    NoErase,
		sandboxes: make(map[string]*FPGASandbox),
	}, nil
}

// Device returns the underlying FPGA device model.
func (rf *RunF) Device() *hw.FPGADevice { return rf.PU.Device }

// Create implements Runtime. The entire spec vector is packed into one
// image and flushed; instances of the previous image transition to Deleted
// (their hardware is replaced — this is where the deferred destroy happens).
func (rf *RunF) Create(p *sim.Proc, specs []Spec) error {
	if len(specs) == 0 {
		return fmt.Errorf("sandbox: empty create vector")
	}
	kernels := make([]string, 0, len(specs))
	for _, s := range specs {
		if s.FuncID == "" {
			return fmt.Errorf("sandbox: FPGA sandbox %q has no func-id", s.ID)
		}
		kernels = append(kernels, s.FuncID)
	}
	img, err := hw.BuildImage(fmt.Sprintf("vec-%d", len(kernels)), kernels)
	if err != nil {
		return err
	}
	// Replace: previous sandboxes are destroyed by the reprogram.
	for _, sb := range rf.sandboxes {
		if sb.State != StateDeleted {
			sb.State = StateDeleted
		}
	}
	rf.sandboxes = make(map[string]*FPGASandbox, len(specs))
	rf.Device().Program(p, img, rf.Policy == EraseAlways)
	for _, s := range specs {
		rf.sandboxes[s.ID] = &FPGASandbox{Spec: s, State: StateCreated}
	}
	return nil
}

// Start implements Runtime: warm the software sandboxes of the given vector
// concurrently (the vectorized start enables concurrent execution across
// wrapper regions, §3.5). Each unprepared sandbox pays the sandbox-prep
// cost and gets a DRAM bank; since preparations proceed in parallel, the
// caller waits only for the slowest one.
func (rf *RunF) Start(p *sim.Proc, ids []string) error {
	var prep []*FPGASandbox
	for _, id := range ids {
		sb, ok := rf.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no FPGA sandbox %q", id)
		}
		if sb.State == StateDeleted {
			return fmt.Errorf("sandbox: FPGA sandbox %q was replaced", id)
		}
		if !sb.Prepared {
			prep = append(prep, sb)
		}
		sb.State = StateRunning
	}
	if len(prep) == 0 {
		return nil
	}
	for _, sb := range prep {
		if _, err := rf.Device().AssignBankShared(sb.Spec.FuncID); err != nil {
			return err
		}
		sb.Prepared = true
	}
	p.Sleep(params.FPGASandboxPrep) // concurrent: one prep time regardless of count
	return nil
}

// Kill implements Runtime.
func (rf *RunF) Kill(p *sim.Proc, ids []string, sig int) error {
	for _, id := range ids {
		sb, ok := rf.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no FPGA sandbox %q", id)
		}
		if sb.State == StateRunning {
			sb.State = StateStopped
		}
	}
	return nil
}

// Delete implements Runtime. For FPGA sandboxes the verb is empty and
// returns directly — flushed functions occupy no resources, and the real
// destroy happens at the next create — but runf still updates the sandbox
// state (§3.5).
func (rf *RunF) Delete(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		sb, ok := rf.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no FPGA sandbox %q", id)
		}
		sb.State = StateDeleted
	}
	return nil
}

// State implements Runtime.
func (rf *RunF) State(ids []string) []Status {
	if ids == nil {
		for id := range rf.sandboxes {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic order for nil queries
	}
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		st := StateUnknown
		if sb, ok := rf.sandboxes[id]; ok {
			st = sb.State
		}
		out = append(out, Status{ID: id, State: st})
	}
	return out
}

// Sandbox returns the FPGA sandbox with the given ID, or nil.
func (rf *RunF) Sandbox(id string) *FPGASandbox { return rf.sandboxes[id] }

// Cached reports whether funcID is baked into the currently programmed
// image (a warm-image hit for the keep-alive policy).
func (rf *RunF) Cached(funcID string) bool {
	img := rf.Device().Image()
	return img != nil && img.Has(funcID)
}

// InvokeOptions tune one FPGA invocation's data movement.
type InvokeOptions struct {
	// InputRetained skips the host→device argument DMA because the producer
	// left the data in the function's DRAM bank (zero-copy chain, §4.3).
	InputRetained bool
	// RetainOutput leaves the result in FPGA DRAM instead of copying it
	// back to the host, for consumption by the next FPGA function.
	RetainOutput bool
}

// Invoke handles one request on a running sandbox: transfer the arguments
// to the device, issue the execute command, and wait for results (the
// paper's description of the start verb in request context). argBytes and
// resultBytes size the DMA transfers; fabricTime is the kernel's execution
// time on the fabric.
func (rf *RunF) Invoke(p *sim.Proc, id string, argBytes, resultBytes int, fabricTime time.Duration, opts InvokeOptions) error {
	sb, ok := rf.sandboxes[id]
	if !ok {
		return fmt.Errorf("sandbox: no FPGA sandbox %q", id)
	}
	if sb.State != StateRunning || !sb.Prepared {
		return fmt.Errorf("sandbox: FPGA sandbox %q not running/prepared", id)
	}
	bank := rf.Device().BankFor(sb.Spec.FuncID)
	if bank == nil {
		return fmt.Errorf("sandbox: FPGA sandbox %q has no DRAM bank", id)
	}
	if !opts.InputRetained {
		if _, err := rf.Machine.Transfer(p, rf.Host.ID, rf.PU.ID, argBytes); err != nil {
			return err
		}
	} else if !bank.Valid {
		return fmt.Errorf("sandbox: FPGA sandbox %q expected retained input but bank is invalid", id)
	}
	// Command issue + completion notification. Bank sharers never execute
	// concurrently (wrapper-enforced), so hold the bank's lock across the
	// kernel run.
	p.Sleep(params.FPGACommandLatency)
	bank.Lock().Acquire(p)
	err := rf.Device().Execute(p, sb.Spec.FuncID, fabricTime)
	bank.Lock().Release()
	if err != nil {
		return err
	}
	if opts.RetainOutput {
		bank.Valid = true
		bank.Data = make([]byte, 0, resultBytes)
	} else {
		if _, err := rf.Machine.Transfer(p, rf.PU.ID, rf.Host.ID, resultBytes); err != nil {
			return err
		}
	}
	return nil
}

// MarkRetained flags funcID's DRAM bank as holding valid input data —
// called by the DAG layer when a producer leaves output for this consumer.
func (rf *RunF) MarkRetained(funcID string) error {
	bank := rf.Device().BankFor(funcID)
	if bank == nil {
		return fmt.Errorf("sandbox: no DRAM bank for %q", funcID)
	}
	bank.Valid = true
	return nil
}

var _ Runtime = (*RunF)(nil)
