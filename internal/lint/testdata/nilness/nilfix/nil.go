package nilfix

// Fixtures for the local definitely-nil subset: only variables nil on EVERY
// path to the use are reported.

type T struct{ x int }

func deref() int {
	var p *T
	return p.x // want `nilness: nil dereference in field access p\.x`
}

func derefLoad() int {
	var p *int
	return *p // want `nilness: nil dereference in load of \*p`
}

func refined(p *T) int {
	if p == nil {
		return p.x // want `nilness: nil dereference in field access p\.x`
	}
	return p.x
}

func mapStore() {
	var m map[string]int
	m["k"] = 1 // want `nilness: store into nil map m`
}

func callNil() {
	var f func()
	f() // want `nilness: call of nil function f`
}

// assigned before use: no finding.
func ok() int {
	p := &T{}
	return p.x
}

// maybe-nil joins to unknown (must-analysis): no finding, by design.
func maybe(b bool) int {
	var p *T
	if b {
		p = &T{}
	}
	if p != nil {
		return p.x
	}
	return 0
}

// address-taken variables are never tracked.
func escaped() int {
	var p *T
	fix(&p)
	return p.x
}

func fix(pp **T) { *pp = &T{} }
