// Stand-in for a freshly added internal package nobody classified yet.
package newpkg

func Noop() {}
