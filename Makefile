# Convenience targets for the Molecule reproduction.

GO ?= go

.PHONY: all check build vet lint lint-fixtures test race chaos bench microbench bench-smoke perfjson nipcjson simjson clusterjson coldstartjson coldstart-race cluster-race shards-race report report-md golden trace-demo attrib-demo examples clean

all: check

# The full CI gate: the harness is concurrent, so -race is required, not
# optional; lint machine-checks the determinism/layering/zero-alloc
# invariants the compiler cannot see.
check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# moleculelint: the repo's own go/analysis suite (internal/lint) — eight
# invariant analyzers plus stock copylocks and a nilness subset — run over
# every package. Add -json for the stable machine-readable report:
#   go run ./cmd/moleculelint -json ./...
lint:
	$(GO) run ./cmd/moleculelint ./...

# Only the analyzer fixture suites (linttest goldens + the -json schema
# golden): fast local iteration while writing or tuning an analyzer,
# without re-vetting the whole tree.
lint-fixtures:
	$(GO) test ./internal/lint/ ./cmd/moleculelint/

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection soak: kill/revive PUs under load, assert no
# invocation is lost or double-billed, and that runs replay from their seed.
# Race-enabled because the recovery path spawns background attempt procs.
chaos:
	$(GO) test -race -run 'TestChaosSoak|TestRetry|TestFailover|TestTimeout' -v ./internal/molecule
	$(GO) run ./cmd/molecule-bench -chaos 42

bench:
	$(GO) test -bench=. -benchmem ./...

# Fast-path microbenchmarks: the sim kernel, the nIPC FIFO write path
# (ns/op and allocs/op), and a warm Molecule invocation end to end.
microbench:
	$(GO) test ./internal/sim -bench 'Kernel|ChanPingPong' -benchmem -run xxx
	$(GO) test ./internal/mem -bench 'ForkFanout' -benchmem -run xxx
	$(GO) test ./internal/xpu -bench 'FIFOWrite' -benchmem -run xxx
	$(GO) test ./internal/molecule -bench 'InvokeWarm' -benchmem -run xxx

# One iteration of every microbenchmark — a CI smoke test that the bench
# rigs still build and run, without paying for stable numbers. The tiny
# -soak run doubles as a fingerprint-equality check across shard counts.
bench-smoke:
	$(GO) test ./internal/sim -bench 'Kernel|ChanPingPong' -benchtime 1x -run xxx
	$(GO) test ./internal/mem -bench 'ForkFanout' -benchtime 1x -run xxx
	$(GO) test ./internal/xpu -bench 'FIFOWrite' -benchtime 1x -run xxx
	$(GO) test ./internal/molecule -bench 'InvokeWarm' -benchtime 1x -run xxx
	$(GO) run ./cmd/molecule-bench -soak - -soak-inv 2000

# Regenerate the machine-readable perf snapshot (BENCH_kernel.json).
perfjson:
	$(GO) run ./cmd/molecule-bench -timing -json BENCH_kernel.json > /dev/null

# Regenerate the batched-nIPC amortization snapshot (BENCH_nipc.json).
nipcjson:
	$(GO) run ./cmd/molecule-bench -nipc BENCH_nipc.json > /dev/null

# Regenerate the sharded-kernel scaling snapshot (BENCH_sim.json): the
# coupled multi-machine soak at shard counts {1,2,4}∪{NumCPU}, with the
# fingerprint-equality check enforced at every point.
simjson:
	$(GO) run ./cmd/molecule-bench -soak BENCH_sim.json

# Regenerate the cluster scaling snapshot (BENCH_cluster.json): the seeded
# loadgen stream through the boss/worker control plane at machine counts
# {1,2,4}, byte-identity enforced across kernel worker counts per point.
clusterjson:
	$(GO) run ./cmd/molecule-bench -cluster BENCH_cluster.json

# Regenerate the cold-start snapshot (BENCH_coldstart.json): the seeded
# Zipf stream of forced-cold invocations through flat cfork and the zygote
# forest, byte-identity enforced across kernel worker counts per arm.
coldstartjson:
	$(GO) run ./cmd/molecule-bench -coldstart BENCH_coldstart.json

# The zygote forest under the race detector (the fitter runs on background
# procs) plus a small -coldstart smoke (table to stdout, no snapshot).
coldstart-race:
	$(GO) test -race -count=1 -run 'Zygote|ColdStart|Release|ForkFanout' ./internal/lang/ ./internal/molecule/ ./internal/mem/ ./internal/bench/
	$(GO) run ./cmd/molecule-bench -coldstart - -coldstart-inv 120

# The cluster control plane under the race detector plus the scaling-sweep
# smoke (tables to stdout, no snapshot rewrite).
cluster-race:
	$(GO) test -race -count=1 ./internal/cluster/ ./internal/httpd/
	$(GO) run ./cmd/molecule-bench -cluster -

# The sharded kernel under the race detector, with every bench-harness
# simulation forced through the windowed driver at 4 OS workers.
shards-race:
	MOLECULE_SHARDS=4 $(GO) test -race -count=1 ./internal/sim/... ./internal/bench/...

# Regenerate every paper table/figure (plus ablations) to stdout.
report:
	$(GO) run ./cmd/molecule-bench

report-md:
	$(GO) run ./cmd/molecule-bench -md

# Rewrite the golden experiment report after an intentional calibration change.
golden:
	$(GO) test ./internal/bench -run Golden -update

# Run the quickstart workload with observability attached and write an
# example Chrome trace (load trace-demo.json in Perfetto or chrome://tracing)
# plus its Prometheus metrics.
trace-demo:
	$(GO) run ./cmd/molecule-bench -trace trace-demo.json -metrics metrics-demo.txt

# Critical-path attribution over the demo workload: the per-(fn, PU kind)
# stage breakdown table to stdout plus a folded-stack profile
# (attrib-demo.folded is flamegraph.pl / speedscope input, virtual time).
attrib-demo:
	$(GO) run ./cmd/molecule-bench -attrib - -profile attrib-demo.folded

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fpgapipeline
	$(GO) run ./examples/alexachain
	$(GO) run ./examples/density
	$(GO) run ./examples/cluster
	$(GO) run ./examples/mapreduce
	$(GO) run ./examples/trace
	$(GO) run ./examples/newpu

# The artifacts the evaluation instructions ask for.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
