package obs

import "sort"

// Render leaks iteration order straight into output.
func Render(series map[string]float64, emit func(string, float64)) {
	for k, v := range series { // want `maporder: range over map in report path`
		emit(k, v)
	}
}

// Sorted collects and sorts first — the canonical fix.
func Sorted(series map[string]float64, emit func(string, float64)) {
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		emit(k, series[k])
	}
}

// Tally only counts and accumulates integers: commutative, so the
// randomized order is unobservable.
func Tally(series map[string]float64, cutoff float64) (n int, total int64) {
	for _, v := range series {
		n++
		if v > cutoff {
			total += int64(v)
		}
	}
	return n, total
}

// Mean accumulates floats, which do not commute under rounding.
func Mean(series map[string]float64) float64 {
	var sum float64
	for _, v := range series { // want `maporder: range over map in report path`
		sum += v
	}
	return sum / float64(len(series))
}

// Invert writes through the range key: each iteration touches a distinct
// entry, so the final map is order-independent.
func Invert(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k := range m {
		out[k] = len(k)
	}
	return out
}

// Drain is waived with a reason: accepted.
func Drain(pending map[string]func()) {
	//lint:unordered callbacks are independent and the set is drained to empty
	for _, fn := range pending {
		fn()
	}
}

// Flush carries a bare marker, which is itself a violation.
func Flush(pending map[string]func()) {
	//lint:unordered
	for _, fn := range pending { // want `marker needs a reason`
		fn()
	}
}

// Rewritten's loop was converted to a sorted slice but the waiver stayed
// behind: stale.
func Rewritten(keys []string, emit func(string)) {
	//lint:unordered the map loop this excused was rewritten over a sorted slice // want `stale //lint:unordered waiver: no map range on this line`
	for _, k := range keys {
		emit(k)
	}
}
