// Command molecule-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	molecule-bench                        # run every experiment (parallel)
//	molecule-bench -parallel 1            # sequential run (same bytes)
//	molecule-bench -exp fig10c            # run one experiment
//	molecule-bench -list                  # list experiment IDs
//	molecule-bench -timing                # append per-experiment wall times
//	molecule-bench -timing -json BENCH_kernel.json
//	                                      # + kernel microbenchmarks, as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/sim/simbench"
)

// benchJSON is the machine-readable perf snapshot written by -json. It pins
// the harness wall times and the kernel microbenchmark numbers so perf
// regressions show up as diffs, not vibes.
type benchJSON struct {
	Parallel    int               `json:"parallel"`
	TotalWallMS float64           `json:"total_wall_ms"`
	Experiments []expTiming       `json:"experiments"`
	KernelBench []simbench.Result `json:"kernel_bench"`
}

type expTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// writeOut renders into path ("-" = stdout).
func writeOut(path string, render func(w io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runObsDemo executes the quickstart workload with observability attached
// and writes the requested exports.
func runObsDemo(tracePath, metricsPath string) error {
	o, err := bench.ObsDemo()
	if err != nil {
		return err
	}
	if tracePath != "" {
		if err := writeOut(tracePath, o.Tracer.WriteChromeTrace); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		if err := writeOut(metricsPath, o.Metrics.WritePrometheus); err != nil {
			return err
		}
	}
	return nil
}

// runAttribDemo executes the attribution demo workload and writes the
// per-(fn, PU kind) critical-path breakdown and/or the virtual-time
// folded-stack profile.
func runAttribDemo(tablePath, foldedPath string) error {
	_, an, err := bench.AttribDemo()
	if err != nil {
		return err
	}
	if tablePath != "" {
		if err := writeOut(tablePath, func(w io.Writer) error {
			an.BreakdownTable().Fprint(w)
			return nil
		}); err != nil {
			return err
		}
	}
	if foldedPath != "" {
		if err := writeOut(foldedPath, an.WriteFolded); err != nil {
			return err
		}
	}
	return nil
}

// clusterJSON is the scaling snapshot written by -cluster
// (BENCH_cluster.json): the same seeded loadgen stream through a Boss at
// each machine count, with byte-identity across kernel worker counts
// enforced at every point before it is reported.
type clusterJSON struct {
	MachineCounts []int                     `json:"machine_counts"`
	WorkerCounts  []int                     `json:"worker_counts_checked"`
	Points        []bench.ClusterSoakResult `json:"points"`
}

// clusterMachineCounts is the doubling sweep {1, 2, 4, ...} clamped to max.
func clusterMachineCounts(max int) []int {
	counts := []int{}
	for m := 1; m <= max; m *= 2 {
		counts = append(counts, m)
	}
	return counts
}

func runClusterSoak(path string, maxMachines int) error {
	counts := clusterMachineCounts(maxMachines)
	// Every point re-runs at each of these kernel worker counts and must
	// produce the byte-identical fingerprint (1 = sequential reference).
	workers := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workers = append(workers, n)
	}
	points, err := bench.ClusterSoakSweep(counts, workers)
	if err != nil {
		return err
	}
	bench.ClusterSoakTable(points).Fprint(os.Stdout)
	if path == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(clusterJSON{MachineCounts: counts, WorkerCounts: workers, Points: points}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// simJSON is the scaling snapshot written by -soak (BENCH_sim.json): the
// same coupled multi-machine workload at each shard count, with the
// fingerprint-equality check already enforced by the sweep itself.
type simJSON struct {
	Machines    int                     `json:"machines"`
	Invocations int                     `json:"invocations_per_machine"`
	Points      []bench.ShardSoakResult `json:"points"`
}

// soakShardCounts is the sweep {1, 2, 4} ∪ {NumCPU}, clamped to the machine
// count (a shard with no machines would be pure overhead).
func soakShardCounts(machines int) []int {
	counts := []int{}
	for _, s := range []int{1, 2, 4, runtime.NumCPU()} {
		if s <= machines && (len(counts) == 0 || s > counts[len(counts)-1]) {
			counts = append(counts, s)
		}
	}
	return counts
}

// coldStartWorkerCounts is the determinism sweep for -coldstart: the classic
// sequential kernel, small sharded-driver counts, and every core.
func coldStartWorkerCounts() []int {
	counts := []int{0, 1, 2, 4}
	if n := runtime.NumCPU(); n > counts[len(counts)-1] {
		counts = append(counts, n)
	}
	return counts
}

func runColdStart(path string, inv int) error {
	workers := coldStartWorkerCounts()
	res, err := bench.ColdStartSweep(inv, workers)
	if err != nil {
		return err
	}
	bench.ColdStartTable(res).Fprint(os.Stdout)
	if path == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func runShardSoak(path string, machines, inv int) error {
	counts := soakShardCounts(machines)
	points, err := bench.ShardSoakSweep(machines, inv, counts)
	if err != nil {
		return err
	}
	bench.ShardSoakTable(points).Fprint(os.Stdout)

	// Window telemetry rides a dedicated re-run of the widest point so the
	// timed sweep stays observer-free; the fingerprint check proves the
	// observed run is the same simulation the table reports.
	if max := counts[len(counts)-1]; max > 1 {
		wt := &obs.WindowTelemetry{}
		tr, err := bench.ShardSoak(bench.ShardSoakConfig{
			Machines: machines, Invocations: inv, Shards: max, Telemetry: wt,
		})
		if err != nil {
			return err
		}
		if tr.Fingerprint != points[0].Fingerprint {
			return fmt.Errorf("telemetry run diverged:\n  got  %s\n  want %s", tr.Fingerprint, points[0].Fingerprint)
		}
		if err := wt.WriteText(os.Stdout); err != nil {
			return err
		}
	}

	if path == "-" {
		return nil
	}
	buf, err := json.MarshalIndent(simJSON{Machines: machines, Invocations: inv, Points: points}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func main() {
	exp := flag.String("exp", "", "experiment id(s) to run, comma separated (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	md := flag.Bool("md", false, "emit the full report as markdown")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently (1 = sequential; output is identical either way)")
	timing := flag.Bool("timing", false, "append per-experiment wall time and total after the report")
	jsonPath := flag.String("json", "", "with -timing: also run the kernel microbenchmarks and write a machine-readable snapshot to this `file`")
	tracePath := flag.String("trace", "", "run the observability demo workload and write its Chrome trace JSON to this `file` (\"-\" = stdout), then exit")
	metricsPath := flag.String("metrics", "", "run the observability demo workload and write its Prometheus metrics to this `file` (\"-\" = stdout), then exit")
	attribPath := flag.String("attrib", "", "run the attribution demo workload and write the per-(fn, PU kind) critical-path breakdown to this `file` (\"-\" = stdout), then exit")
	profilePath := flag.String("profile", "", "run the attribution demo workload and write a virtual-time folded-stack profile (flamegraph.pl input) to this `file` (\"-\" = stdout), then exit")
	chaosSeed := flag.Uint64("chaos", 0, "run the seeded chaos soak demo (kill/revive + fault injection) and exit (0 = off)")
	nipcPath := flag.String("nipc", "", "run the batched-nIPC sweep, print its tables, and write a JSON snapshot to this `file` (\"-\" = stdout only), then exit")
	shards := flag.Int("shards", bench.SimShards(), "kernel workers per simulation: 0/1 = classic sequential kernel, N > 1 = sharded windowed driver with N OS workers (output is identical either way; default from MOLECULE_SHARDS)")
	soakPath := flag.String("soak", "", "run the sharded-kernel scaling soak, print its table, and write a JSON snapshot to this `file` (\"-\" = stdout only), then exit")
	soakMachines := flag.Int("soak-machines", 4, "with -soak: simulated machines")
	soakInv := flag.Int("soak-inv", 50000, "with -soak: invocations per machine")
	clusterPath := flag.String("cluster", "", "run the boss/worker cluster scaling soak, print its table, and write a JSON snapshot to this `file` (\"-\" = stdout only), then exit")
	clusterMachines := flag.Int("cluster-machines", 4, "with -cluster: max machine count (sweep doubles 1,2,4,... up to this)")
	coldstartPath := flag.String("coldstart", "", "run the flat-cfork vs zygote-forest cold-start comparison, print its table, and write a JSON snapshot to this `file` (\"-\" = stdout only), then exit")
	coldstartInv := flag.Int("coldstart-inv", 600, "with -coldstart: forced-cold invocations per arm")
	flag.Parse()

	bench.SetSimShards(*shards)

	if *coldstartPath != "" {
		if err := runColdStart(*coldstartPath, *coldstartInv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *clusterPath != "" {
		if err := runClusterSoak(*clusterPath, *clusterMachines); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *soakPath != "" {
		if err := runShardSoak(*soakPath, *soakMachines, *soakInv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *nipcPath != "" {
		sweeps := bench.NIPCBatch()
		for _, t := range bench.NIPCBatchTables(sweeps) {
			t.Fprint(os.Stdout)
		}
		if *nipcPath != "-" {
			buf, err := json.MarshalIndent(sweeps, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*nipcPath, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *nipcPath)
		}
		return
	}

	if *chaosSeed != 0 {
		if err := bench.ChaosDemo(os.Stdout, *chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *tracePath != "" || *metricsPath != "" {
		if err := runObsDemo(*tracePath, *metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *attribPath != "" || *profilePath != "" {
		if err := runAttribDemo(*attribPath, *profilePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; -list shows available ids\n", id)
				os.Exit(1)
			}
			fmt.Printf("### %s — %s\n    paper: %s\n\n", e.ID, e.Title, e.Paper)
			for _, t := range e.Run() {
				t.Fprint(os.Stdout)
			}
		}
		return
	}

	// Full report. RunEach streams results in evaluation-section order, so
	// the report bytes match a sequential run at any -parallel value.
	var timings []expTiming
	start := time.Now()
	bench.RunEach(*parallel, func(r bench.Result) {
		if *md {
			if len(timings) == 0 {
				fmt.Println("# Molecule reproduction — experiment report")
				fmt.Println()
			}
			fmt.Printf("## %s — %s\n\n> paper: %s\n\n", r.ID, r.Title, r.Paper)
			for _, t := range r.Tables {
				t.Markdown(os.Stdout)
			}
		} else {
			fmt.Printf("### %s — %s\n    paper: %s\n\n", r.ID, r.Title, r.Paper)
			for _, t := range r.Tables {
				t.Fprint(os.Stdout)
			}
		}
		timings = append(timings, expTiming{ID: r.ID, WallMS: ms(r.Wall)})
	})
	total := time.Since(start)

	if !*timing {
		return
	}
	fmt.Printf("### timing — wall clock, %d worker(s)\n\n", *parallel)
	for _, t := range timings {
		fmt.Printf("    %-16s %8.1f ms\n", t.ID, t.WallMS)
	}
	fmt.Printf("    %-16s %8.1f ms\n\n", "TOTAL", ms(total))

	if *jsonPath == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "running kernel microbenchmarks for %s ...\n", *jsonPath)
	snap := benchJSON{
		Parallel:    *parallel,
		TotalWallMS: ms(total),
		Experiments: timings,
		KernelBench: simbench.All(),
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
}
