// Package lang models the forkable language runtimes (Python and Node.js)
// that host CPU/DPU serverless functions.
//
// The paper's cfork (§4.2) lifts the fork mechanism from the OS into the
// language runtime: the template runtime temporarily merges its auxiliary
// threads into one, saves the multi-threaded contexts in memory, performs a
// plain OS fork (which only propagates the forking thread), and re-expands
// the threads in the child. The child then migrates into a pre-created
// "function container" (namespaces + cgroup), loads the function's code, and
// connects back to the Molecule runtime.
//
// The model charges each protocol step its calibrated cost and performs real
// page-table operations on the simulated OS, so both the latency breakdown
// (Fig 11a) and the memory sharing effects (Fig 11b/c) emerge from the same
// mechanism.
package lang

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

// Kind names a language runtime.
type Kind string

const (
	Python Kind = "python"
	Node   Kind = "nodejs"
)

// Spec describes a language runtime's cost/footprint profile.
type Spec struct {
	Kind       Kind
	InitCost   time.Duration // cold interpreter boot + wrapper import (CPU time)
	BasePages  int           // resident footprint of the idle runtime
	AuxThreads int           // helper threads merged/expanded around fork
}

// SpecFor returns the profile for a runtime kind.
func SpecFor(k Kind) (Spec, error) {
	switch k {
	case Python:
		return Spec{Kind: Python, InitCost: params.PythonInitTime,
			BasePages: params.PythonRuntimePages, AuxThreads: 2}, nil
	case Node:
		return Spec{Kind: Node, InitCost: params.NodeInitTime,
			BasePages: params.NodeRuntimePages, AuxThreads: 4}, nil
	default:
		return Spec{}, fmt.Errorf("lang: unsupported runtime %q", k)
	}
}

// startupScale returns the startup-work multiplier for a PU (slow DPU cores
// and I/O stretch cold boot far more than steady-state compute).
func startupScale(pu *hw.PU) float64 {
	if pu == nil {
		return 1.0
	}
	if pu.StartupFactor > 0 {
		return pu.StartupFactor
	}
	if pu.Kind == hw.DPU {
		return params.DPUStartupPenalty
	}
	return 1.0
}

func scaled(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// Instance is one language-runtime process: either a template (generic,
// forkable) or a function instance (specialized, serving requests).
type Instance struct {
	Spec Spec
	OS   *localos.OS
	Proc *localos.Process

	baseVPN    int // first page of the runtime's base footprint
	funcVPN    int // first page of the function's private working set
	FuncID     string
	IsTemplate bool
	merged     bool // threads currently merged for forking
	// COWPending marks a freshly forked instance whose first request will
	// fault in its copy-on-write pages (§6.6 warm-boot discussion).
	COWPending bool
}

// BootCold starts a fresh runtime process: spawn + interpreter init, with the
// base footprint mapped. It is the baseline cold-start path and also how
// templates are created.
func BootCold(p *sim.Proc, os *localos.OS, spec Spec, name string, template bool) *Instance {
	pr := os.Spawn(p, name)
	f := startupScale(os.PU)
	p.Sleep(scaled(spec.InitCost, f))
	inst := &Instance{Spec: spec, OS: os, Proc: pr, IsTemplate: template}
	inst.baseVPN = pr.AS.Map(spec.BasePages)
	pr.Threads = 1 + spec.AuxThreads
	return inst
}

// LoadFunction loads the function's code and dependencies into the runtime,
// dirtying the instance's private working set.
func (inst *Instance) LoadFunction(p *sim.Proc, funcID string) {
	f := startupScale(inst.OS.PU)
	p.Sleep(scaled(params.FuncLoadTime, f))
	inst.FuncID = funcID
	if inst.funcVPN == 0 {
		inst.funcVPN = inst.Proc.AS.Map(params.FuncPrivatePages)
	}
	// Loading also dirties part of the runtime's own pages (imports,
	// heap warm-up) — the part of the template that will never be shared.
	dirty := int(float64(inst.Spec.BasePages) * (1 - params.TemplateSharedFraction))
	inst.OS.Touch(p, inst.Proc, inst.baseVPN, dirty)
}

// ImportResidual imports the packages the instance's template ancestor did
// not already hold, plus the function's private import tail — initialization
// work (app code, config, connections) no template can pre-run. Import CPU
// time scales with the PU's startup factor like every startup-path cost;
// the imported packages map fresh private pages.
func (inst *Instance) ImportResidual(p *sim.Proc, residual PkgSet, tail time.Duration) {
	f := startupScale(inst.OS.PU)
	if d := residual.ImportCost() + tail; d > 0 {
		p.Sleep(scaled(d, f))
	}
	if pages := residual.ImportPages(); pages > 0 {
		inst.Proc.AS.Map(pages)
	}
}

// MergeThreads collapses the runtime's auxiliary threads into the main one,
// saving their contexts in memory, so the process becomes plainly forkable.
func (inst *Instance) MergeThreads(p *sim.Proc) {
	if inst.merged || inst.Proc.Threads <= 1 {
		inst.merged = true
		inst.Proc.Threads = 1
		return
	}
	aux := inst.Proc.Threads - 1
	f := startupScale(inst.OS.PU)
	p.Sleep(scaled(time.Duration(aux)*params.CforkThreadMergeTime, f))
	inst.Proc.Threads = 1
	inst.merged = true
}

// ExpandThreads restores the merged thread contexts after a fork.
func (inst *Instance) ExpandThreads(p *sim.Proc) {
	if !inst.merged {
		return
	}
	aux := inst.Spec.AuxThreads
	f := startupScale(inst.OS.PU)
	p.Sleep(scaled(time.Duration(aux)*params.CforkThreadExpandTime, f))
	inst.Proc.Threads = 1 + aux
	inst.merged = false
}

// BaselineColdStart is the unoptimized startup path used by Molecule-homo
// and commodity platforms: create a container, boot the language runtime in
// it, and load the function's code (Fig 11a "Baseline").
func BaselineColdStart(p *sim.Proc, os *localos.OS, spec Spec, funcID, name string) *Instance {
	f := startupScale(os.PU)
	p.Sleep(scaled(params.ContainerCreateTime, f))
	ns := os.NewNamespace("c-" + name)
	cg := os.NewCgroup("c-"+name, 1, 1<<28)
	inst := BootCold(p, os, spec, name, false)
	inst.Proc.NS, inst.Proc.CG = ns, cg
	inst.LoadFunction(p, funcID)
	return inst
}

// CforkOptions select the optimizations of the Fig 11a breakdown.
type CforkOptions struct {
	// PreparedContainer uses a pre-initialized function container instead of
	// creating one during the fork ("FuncContainer").
	PreparedContainer bool
	// CpusetMutexPatch applies the kernel cpuset semaphore→mutex patch
	// ("Cpuset opt").
	CpusetMutexPatch bool
	// Container is the pre-created function container to join when
	// PreparedContainer is set. When nil and PreparedContainer is set, a
	// zero-cost placeholder namespace/cgroup pair is fabricated.
	Namespace *localos.Namespace
	Cgroup    *localos.Cgroup
	// KeepTemplateMerged leaves the template parked single-threaded after
	// the fork instead of re-expanding its auxiliary threads. Zygote-tree
	// templates stay merged between forks (SOCK-style), so consecutive
	// forks skip the merge step entirely.
	KeepTemplateMerged bool
}

// Cfork produces a new function instance from a template via the paper's
// container-fork protocol. The returned instance shares the template's
// memory copy-on-write and is loaded with funcID.
func Cfork(p *sim.Proc, tmpl *Instance, funcID string, opts CforkOptions) (*Instance, error) {
	if !tmpl.IsTemplate {
		return nil, fmt.Errorf("lang: cfork source %q is not a template", tmpl.FuncID)
	}
	os := tmpl.OS
	f := startupScale(os.PU)

	ns, cg := opts.Namespace, opts.Cgroup
	if !opts.PreparedContainer {
		// Create the function container on the critical path (naive cfork).
		p.Sleep(scaled(params.ContainerCreateTime, f))
		ns = os.NewNamespace("fc-" + funcID)
		cg = os.NewCgroup("fc-"+funcID, 1, 1<<28)
	} else {
		if ns == nil {
			ns = os.NewNamespace("fc-" + funcID)
		}
		if cg == nil {
			cg = os.NewCgroup("fc-"+funcID, 1, 1<<28)
		}
	}

	// 1. Merge runtime threads so plain fork is safe.
	tmpl.MergeThreads(p)

	// 2. OS-level COW fork of the single-threaded template.
	childProc, err := os.Fork(p, tmpl.Proc, "fn-"+funcID)
	if err != nil {
		return nil, err
	}

	child := &Instance{
		Spec:    tmpl.Spec,
		OS:      os,
		Proc:    childProc,
		baseVPN: tmpl.baseVPN,
		merged:  true,
	}

	// 3. The child reconfigures its namespaces and cgroup to the function
	// container's.
	os.JoinNamespace(p, childProc, ns)
	os.JoinCgroup(p, childProc, cg, opts.CpusetMutexPatch)

	// 4. Re-expand threads in both template and child.
	child.ExpandThreads(p)
	if !opts.KeepTemplateMerged {
		tmpl.ExpandThreads(p)
	}

	// 5. Load the function's code and connect back to Molecule.
	child.COWPending = true
	child.LoadFunction(p, funcID)
	p.Sleep(scaled(params.CforkConnectTime, f))
	return child, nil
}

// Invoke runs the loaded function's handler for the given CPU-time cost,
// scaled by the PU's speed. A freshly forked instance's first request pays
// the copy-on-write fault penalty; once its working set is private, later
// requests do not (§6.6).
func (inst *Instance) Invoke(p *sim.Proc, cpuCost time.Duration, forked bool) {
	d := inst.OS.PU.ComputeTime(cpuCost)
	if forked && inst.COWPending {
		d += params.CforkCOWFaultPenalty
		inst.COWPending = false
	}
	p.Sleep(d)
}

// Exit terminates the instance's process, releasing its memory.
func (inst *Instance) Exit() { inst.OS.Exit(inst.Proc) }

// RSSBytes returns the instance's resident set size in bytes.
func (inst *Instance) RSSBytes() int64 {
	return int64(inst.Proc.AS.RSSPages()) * params.PageSize
}

// PSSBytes returns the instance's proportional set size in bytes.
func (inst *Instance) PSSBytes() float64 {
	return inst.Proc.AS.PSSPages() * params.PageSize
}

// Snapshot is a checkpointed instance image: the alternative startup
// optimization to fork (Fig 15's design space — Replayable Execution,
// FireCracker snapshots). Restoring shares the snapshot's pages through the
// page cache, so restored instances also enjoy memory sharing, but the
// restore itself costs tens of milliseconds versus cfork's single-digit.
type Snapshot struct {
	Spec   Spec
	FuncID string
	image  *Instance // frozen donor whose pages restores share
}

// TakeSnapshot checkpoints a loaded instance. The donor instance remains
// usable; the snapshot pins its memory image.
func TakeSnapshot(p *sim.Proc, inst *Instance) (*Snapshot, error) {
	if inst.FuncID == "" {
		return nil, fmt.Errorf("lang: snapshot of unloaded instance")
	}
	f := startupScale(inst.OS.PU)
	p.Sleep(scaled(params.SnapshotTakeTime, f))
	// Freeze a COW copy as the canonical image so later writes by the donor
	// do not leak into restores.
	frozen := &Instance{
		Spec:    inst.Spec,
		OS:      inst.OS,
		Proc:    &localos.Process{AS: inst.Proc.AS.Fork(), Threads: 1},
		baseVPN: inst.baseVPN,
		funcVPN: inst.funcVPN,
		FuncID:  inst.FuncID,
	}
	return &Snapshot{Spec: inst.Spec, FuncID: inst.FuncID, image: frozen}, nil
}

// Restore produces a new instance from the snapshot: pages map shared from
// the snapshot image (page cache) and the runtime state rehydrates in
// SnapshotRestoreTime. No fork protocol, no thread merge, no dependency
// import — but an order of magnitude slower than cfork.
func (s *Snapshot) Restore(p *sim.Proc, os *localos.OS) *Instance {
	f := startupScale(os.PU)
	p.Sleep(scaled(params.SnapshotRestoreTime, f))
	pr := os.SpawnFromImage(p, "restored-"+s.FuncID, s.image.Proc.AS.Fork(), 1+s.Spec.AuxThreads)
	inst := &Instance{
		Spec:    s.Spec,
		OS:      os,
		Proc:    pr,
		baseVPN: s.image.baseVPN,
		funcVPN: s.image.funcVPN,
		FuncID:  s.FuncID,
	}
	p.Sleep(scaled(params.CforkConnectTime, f))
	return inst
}
