package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promSeries is one line of exposition: the series name (family name plus
// any _bucket/_sum/_count suffix), the rendered label block, and the value.
type promSeries struct {
	name   string
	labels string
	value  string
}

func labelBlock(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFloat renders values the way Prometheus client libraries do (%g keeps
// integers unsuffixed and small fractions readable).
func fmtFloat(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sort by name,
// series by label set. Counters and gauges emit one line per series;
// histograms emit cumulative _bucket lines (le in seconds, per convention)
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type family struct {
		typ    string
		series []promSeries
	}
	fams := make(map[string]*family)
	add := func(name, typ string, s promSeries) {
		f, ok := fams[name]
		if !ok {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.series = append(f.series, s)
	}
	// Series keys embed the family name before the first 0xff separator.
	//lint:unordered every family and series is sorted below before rendering
	for k, c := range r.counters {
		name := familyName(k)
		add(name, "counter", promSeries{name: name, labels: labelBlock(c.labels), value: fmt.Sprintf("%d", c.v)})
	}
	//lint:unordered every family and series is sorted below before rendering
	for k, g := range r.gauges {
		name := familyName(k)
		add(name, "gauge", promSeries{name: name, labels: labelBlock(g.labels), value: fmtFloat(g.v)})
	}
	//lint:unordered families sort below; one histogram's buckets stay in ascending-le insertion order under the stable sort
	for k, h := range r.hists {
		name := familyName(k)
		cum := int64(0)
		for i, ub := range histBuckets {
			cum += h.counts[i]
			add(name, "histogram", promSeries{
				name:   name + "_bucket",
				labels: labelBlock(h.labels, L("le", fmtFloat(ub.Seconds()))),
				value:  fmt.Sprintf("%d", cum),
			})
		}
		add(name, "histogram", promSeries{
			name:   name + "_bucket",
			labels: labelBlock(h.labels, L("le", "+Inf")),
			value:  fmt.Sprintf("%d", cum+h.inf),
		})
		add(name, "histogram", promSeries{name: name + "_sum", labels: labelBlock(h.labels), value: fmtFloat(h.sum.Seconds())})
		add(name, "histogram", promSeries{name: name + "_count", labels: labelBlock(h.labels), value: fmt.Sprintf("%d", h.n)})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if help := r.help[name]; help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		// Sort by (label set without le, series name); stable sort keeps one
		// histogram's bucket lines in ascending-le insertion order.
		sort.SliceStable(f.series, func(i, j int) bool {
			return seriesSortKey(f.series[i]) < seriesSortKey(f.series[j])
		})
		for _, s := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesSortKey orders series within a family: primary key is the label
// block with any le="..." pair stripped (one histogram's buckets stay
// adjacent, in insertion order), secondary is the series name so _bucket,
// _count, and _sum group predictably.
//
// The le match must sit on a label-key boundary ('{' or ','). A raw
// substring search also matches *inside* a label whose key merely ends in
// "le" — role="edge" contains the bytes le=" — which used to strip the
// wrong segment and leave the real le value in the key, so bucket lines
// sorted lexically by le string ("+Inf" < "0.0001", "1e-06" last) instead
// of staying in ascending-le insertion order.
func seriesSortKey(s promSeries) string {
	labels := s.labels
	for i := 0; i+4 <= len(labels); i++ {
		if labels[i:i+4] != `le="` {
			continue
		}
		if i == 0 || (labels[i-1] != '{' && labels[i-1] != ',') {
			continue // inside another label's key or value, not the le pair
		}
		j := strings.IndexByte(labels[i+4:], '"')
		if j < 0 {
			break
		}
		end := i + 4 + j + 1 // one past the closing quote
		if labels[i-1] == ',' {
			labels = labels[:i-1] + labels[end:] // {...,le="x"} -> {...}
		} else {
			labels = labels[:i] + labels[end:] // {le="x"} -> {}; {le="x",...} stays comma-led either way
		}
		break
	}
	return labels + "\x00" + s.name
}

// familyName extracts the metric family name from a series key (the part
// before the first 0xff label separator).
func familyName(k string) string {
	if i := strings.IndexByte(k, 0xff); i >= 0 {
		return k[:i]
	}
	return k
}
