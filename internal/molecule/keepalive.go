package molecule

import "sort"

// keepAlive implements the keep-alive (warm instance) policy: a
// greedy-dual-frequency cache in the style of FaasCache (§4.2, §5). Each
// function carries a priority of clock + frequency × cost; the cache evicts
// the lowest-priority function's instances first, and the running clock is
// advanced to each evicted priority so recently-evicted functions do not
// immediately lose again.
type keepAlive struct {
	capPerPU int
	clock    float64
	stats    map[string]*kaStat
}

type kaStat struct {
	freq int
	cost float64 // relative recreation cost (cold-start expense)
	pri  float64
}

func newKeepAlive(capPerPU int) *keepAlive {
	if capPerPU <= 0 {
		capPerPU = 64
	}
	return &keepAlive{capPerPU: capPerPU, stats: make(map[string]*kaStat)}
}

func (ka *keepAlive) stat(fn string) *kaStat {
	s, ok := ka.stats[fn]
	if !ok {
		s = &kaStat{cost: 1}
		ka.stats[fn] = s
	}
	return s
}

// hit records a warm-pool hit for fn, boosting its priority.
func (ka *keepAlive) hit(fn string) {
	s := ka.stat(fn)
	s.freq++
	s.pri = ka.clock + float64(s.freq)*s.cost
}

// setCost tunes a function's recreation cost (e.g. FPGA functions are far
// more expensive to recreate than cfork'd containers).
func (ka *keepAlive) setCost(fn string, cost float64) {
	if cost <= 0 {
		cost = 1
	}
	ka.stat(fn).cost = cost
}

// admit is called after an instance of fn joins node n's warm pool. It
// returns the instances to evict to respect the per-PU cap.
func (ka *keepAlive) admit(fn string, n *puNode) []*instance {
	s := ka.stat(fn)
	s.freq++
	s.pri = ka.clock + float64(s.freq)*s.cost

	total := 0
	for _, pool := range n.warm {
		total += len(pool)
	}
	var evict []*instance
	for total > ka.capPerPU {
		names := make([]string, 0, len(n.warm))
		for name, pool := range n.warm {
			if len(pool) > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		victimFn := ""
		victimPri := 0.0
		for _, name := range names {
			pri := ka.stat(name).pri
			if victimFn == "" || pri < victimPri {
				victimFn, victimPri = name, pri
			}
		}
		if victimFn == "" {
			break
		}
		pool := n.warm[victimFn]
		evict = append(evict, pool[0])
		n.warm[victimFn] = pool[1:]
		// Greedy-dual aging: the clock only ever advances. A victim whose
		// priority predates the current clock (stale stat from an earlier
		// era) must not rewind it, or every later admit would inherit an
		// artificially low base priority and thrash the cache.
		if victimPri > ka.clock {
			ka.clock = victimPri
		}
		total--
	}
	return evict
}

// victim picks the idle warm instance the policy would give up from node
// n's pools — lowest greedy-dual priority first, name-sorted tiebreak, the
// same choice admit makes under the per-PU cap — without removing it from
// the pool (the caller destroys it, which unpools). Nil when every pool is
// empty. Used by density-pressure eviction: a cold start that would fail
// on a capacity-full PU reclaims one idle instance instead.
func (ka *keepAlive) victim(n *puNode) *instance {
	names := make([]string, 0, len(n.warm))
	for name, pool := range n.warm {
		if len(pool) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	victimFn := ""
	victimPri := 0.0
	for _, name := range names {
		pri := ka.stat(name).pri
		if victimFn == "" || pri < victimPri {
			victimFn, victimPri = name, pri
		}
	}
	if victimFn == "" {
		return nil
	}
	// Same greedy-dual aging as admit: the clock never rewinds.
	if victimPri > ka.clock {
		ka.clock = victimPri
	}
	return n.warm[victimFn][0]
}

// Priority exposes a function's current cache priority (for tests).
func (ka *keepAlive) Priority(fn string) float64 { return ka.stat(fn).pri }
