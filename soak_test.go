package repro

// Soak test: a long, seeded, randomized scenario that interleaves every
// major operation — deploys, invokes, chains, DAGs, accelerator calls,
// executor crashes, sandbox kills, and bursts — while checking global
// invariants after every step. The point is not any single latency but that
// the system never wedges, leaks instances, or corrupts its accounting
// under adversarial interleaving.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/sandbox"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestSoakShardedTenMillion pushes ~10^7 events through the sharded kernel
// with one machine per domain — the configuration the scaling numbers come
// from — and leans on ShardSoak's built-in invariants: zero lost
// cross-machine messages, complete invocation counts, and monotone
// per-shard clocks as observed at every cross-shard delivery.
func TestSoakShardedTenMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-event sharded soak in -short mode")
	}
	const machines, invocations = 4, 2_150_000
	res, err := bench.ShardSoak(bench.ShardSoakConfig{
		Machines:    machines,
		Invocations: invocations,
		Shards:      machines,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < 10_000_000 {
		t.Fatalf("soak scheduled only %d events, want >= 10^7", res.Events)
	}
	t.Logf("%d events at %.0f events/sec across %d shards", res.Events, res.EventsPerSec, res.Shards)
}

func TestSoakRandomizedOperations(t *testing.T) {
	const steps = 300
	rng := rand.New(rand.NewSource(0xC0FFEE))

	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 2, FPGAs: 1, GPUs: 1})
	env.Spawn("soak", func(p *sim.Proc) {
		opts := molecule.DefaultOptions()
		opts.KeepWarmPerPU = 8
		rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
		if err != nil {
			t.Fatal(err)
		}
		general := []string{"matmul", "pyaes", "chameleon", "image-resize", "dd"}
		for _, fn := range general {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Deploy(p, "mscale",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.FPGA),
			molecule.DefaultProfile(hw.GPU)); err != nil {
			t.Fatal(err)
		}
		dpus := rt.Machine.PUsOfKind(hw.DPU)
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID
		gpu := rt.Machine.PUsOfKind(hw.GPU)[0].ID

		check := func(step int) {
			if rt.LiveInstances() < 0 {
				t.Fatalf("step %d: negative live instances", step)
			}
			if rt.LiveInstances() > rt.Capacity() {
				t.Fatalf("step %d: live %d exceeds capacity %d", step, rt.LiveInstances(), rt.Capacity())
			}
		}

		invocations := 0
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); op {
			case 0, 1, 2, 3: // plain invoke, random placement
				fn := general[rng.Intn(len(general))]
				pin := hw.PUID(-1)
				if rng.Intn(2) == 0 {
					pin = dpus[rng.Intn(len(dpus))].ID
				}
				if _, err := rt.Invoke(p, fn, molecule.InvokeOptions{PU: pin}); err != nil {
					t.Fatalf("step %d invoke: %v", step, err)
				}
				invocations++
			case 4: // accelerator invoke
				pin := fpga
				if rng.Intn(2) == 0 {
					pin = gpu
				}
				if _, err := rt.Invoke(p, "mscale", molecule.InvokeOptions{PU: pin}); err != nil {
					t.Fatalf("step %d accel: %v", step, err)
				}
				invocations++
			case 5: // chain with random policy
				policies := []molecule.PlacementPolicy{
					molecule.PlaceChainAffinity, molecule.PlaceScatter, molecule.PlaceCheapest,
				}
				chain := []string{general[rng.Intn(len(general))], general[rng.Intn(len(general))]}
				if _, err := rt.InvokeChainWithPolicy(p, chain, policies[rng.Intn(len(policies))]); err != nil {
					t.Fatalf("step %d chain: %v", step, err)
				}
				invocations += 2
			case 6: // fan-out DAG
				dag := molecule.DAG{Nodes: []molecule.DAGNode{
					{Fn: general[rng.Intn(len(general))]},
					{Fn: general[rng.Intn(len(general))], Deps: []int{0}},
					{Fn: general[rng.Intn(len(general))], Deps: []int{0}},
					{Fn: general[rng.Intn(len(general))], Deps: []int{1, 2}},
				}}
				if _, err := rt.InvokeDAG(p, dag, molecule.DAGOptions{}); err != nil {
					t.Fatalf("step %d dag: %v", step, err)
				}
				invocations += 4
			case 7: // executor crash on a random DPU
				if err := rt.KillExecutor(p, dpus[rng.Intn(len(dpus))].ID); err != nil {
					t.Fatalf("step %d crash: %v", step, err)
				}
			case 8: // kill a random running container behind Molecule's back
				cr := rt.ContainerRuntimeOn(0)
				sts := cr.State(nil)
				if len(sts) > 0 {
					victim := sts[rng.Intn(len(sts))]
					if victim.State == sandbox.StateRunning {
						cr.Kill(p, []string{victim.ID}, 9)
					}
				}
			case 9: // concurrent burst
				wg := sim.NewWaitGroup(p.Env())
				fn := general[rng.Intn(len(general))]
				n := 2 + rng.Intn(4)
				for i := 0; i < n; i++ {
					wg.Add(1)
					p.Env().Spawn("burst", func(bp *sim.Proc) {
						defer wg.Done()
						if _, err := rt.Invoke(bp, fn, molecule.DefaultInvokeOptions()); err != nil {
							t.Errorf("step %d burst: %v", step, err)
						}
					})
				}
				wg.Wait(p)
				invocations += n
			}
			check(step)
			// Virtual time must only move forward.
			if p.Now() < 0 {
				t.Fatal("clock went negative")
			}
		}

		if got := len(rt.Billing().Entries()); got != invocations {
			t.Errorf("billing entries %d != invocations %d", got, invocations)
		}
		if rt.Billing().Total() <= 0 {
			t.Error("no revenue after soak")
		}
		// Every DPU executor is alive (respawned after crashes).
		for _, d := range dpus {
			rt.Invoke(p, "matmul", molecule.InvokeOptions{PU: d.ID})
			if !rt.ExecutorAlive(d.ID) {
				t.Errorf("DPU %d executor dead at end", d.ID)
			}
		}
	})
	end := env.Run()
	if env.LiveProcs() != 0 {
		t.Fatalf("soak left %d processes blocked", env.LiveProcs())
	}
	if end <= 0 || time.Duration(end) > 24*time.Hour {
		t.Errorf("implausible virtual end time %v", end)
	}
}
