// Command moleculed serves a simulated Molecule platform over HTTP.
//
//	moleculed -addr :8080 -dpus 2 -fpgas 1
//
//	curl -X POST 'localhost:8080/deploy?fn=helloworld'
//	curl -X POST 'localhost:8080/invoke?fn=helloworld&body=1'
//	curl -X POST 'localhost:8080/chain?fns=mr-splitter,mr-mapper,mr-reducer'
//	curl 'localhost:8080/stats'
//
// Latencies in responses are virtual (simulated); outputs are real.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"repro/internal/httpd"
	"repro/internal/hw"
	"repro/internal/molecule"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dpus := flag.Int("dpus", 1, "Bluefield DPUs")
	fpgas := flag.Int("fpgas", 1, "FPGAs")
	gpus := flag.Int("gpus", 0, "GPUs")
	fnFile := flag.String("functions", "", "JSON file with custom function specs")
	trace := flag.Bool("trace", false, "record invocation spans; GET /trace serves Chrome trace_event JSON")
	metrics := flag.Bool("metrics", false, "record metrics; GET /metrics serves Prometheus text exposition")
	flag.Parse()

	s, err := httpd.NewServer(hw.Config{DPUs: *dpus, FPGAs: *fpgas, GPUs: *gpus},
		molecule.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if *trace || *metrics {
		s.EnableObservability()
		log.Printf("observability on: GET /metrics (Prometheus text), GET /trace (Chrome trace JSON)")
	}
	if *fnFile != "" {
		data, err := os.ReadFile(*fnFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.LoadFunctions(data); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded custom functions from %s", *fnFile)
	}
	log.Printf("moleculed listening on %s (DPUs=%d FPGAs=%d GPUs=%d)", *addr, *dpus, *fpgas, *gpus)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
