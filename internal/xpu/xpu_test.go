package xpu

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/sim"
)

// rig is a CPU + 1 DPU machine with shim nodes and one registered process on
// each PU.
type rig struct {
	env     *sim.Env
	m       *hw.Machine
	shim    *Shim
	cpuNode *Node
	dpuNode *Node
	cpuProc *localos.Process
	dpuProc *localos.Process
	cpuXPID XPID
	dpuXPID XPID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	shim := NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	dpuOS := localos.New(env, m.PU(1))
	cn := shim.AddNode(m.PU(0), cpuOS)
	dn := shim.AddNode(m.PU(1), dpuOS)
	r := &rig{env: env, m: m, shim: shim, cpuNode: cn, dpuNode: dn}
	r.cpuProc = cpuOS.NewDetachedProcess("cpu-app")
	r.dpuProc = dpuOS.NewDetachedProcess("dpu-app")
	r.cpuXPID = cn.Register(r.cpuProc)
	r.dpuXPID = dn.Register(r.dpuProc)
	return r
}

func TestXPIDGloballyUnique(t *testing.T) {
	r := newRig(t)
	if r.cpuXPID == r.dpuXPID {
		t.Error("same local PID on two PUs produced the same xpu_pid")
	}
	if r.cpuXPID.PU == r.dpuXPID.PU {
		t.Error("xpu_pid does not encode the PU")
	}
	if r.cpuXPID.String() == "" {
		t.Error("empty String()")
	}
}

func TestTransportModeOrdering(t *testing.T) {
	base := TransportBase.CallOverhead(hw.DPU)
	mpsc := TransportMPSC.CallOverhead(hw.DPU)
	poll := TransportPoll.CallOverhead(hw.DPU)
	if !(poll < mpsc && mpsc < base) {
		t.Errorf("DPU XPUcall overheads not ordered: poll=%v mpsc=%v base=%v", poll, mpsc, base)
	}
	// §5: naive XPUcall ≈100us on BF-1 and ≈20us on host CPU.
	if base < 90*time.Microsecond || base > 120*time.Microsecond {
		t.Errorf("DPU base overhead %v outside ~100us", base)
	}
	cpuBase := TransportBase.CallOverhead(hw.CPU)
	if cpuBase < 15*time.Microsecond || cpuBase > 30*time.Microsecond {
		t.Errorf("CPU base overhead %v outside ~20us", cpuBase)
	}
	if TransportPoll.String() != "poll" || TransportMode(9).String() == "" {
		t.Error("TransportMode String broken")
	}
}

func TestDefaultTransports(t *testing.T) {
	r := newRig(t)
	if r.cpuNode.Mode != TransportBase {
		t.Error("CPU node default transport is not Base (paper applies optimizations only on devices)")
	}
	if r.dpuNode.Mode != TransportPoll {
		t.Error("DPU node default transport is not Poll")
	}
}

func TestFIFOInitConnectReadWrite(t *testing.T) {
	r := newRig(t)
	var got localos.Message
	r.env.Spawn("cpu-side", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f-1", 4)
		if err != nil {
			t.Fatal(err)
		}
		// Grant the DPU process write access.
		obj := ObjID{Kind: "fifo", UUID: "f-1"}
		if err := r.cpuNode.GrantCap(p, r.cpuXPID, r.dpuXPID, obj, PermWrite); err != nil {
			t.Fatal(err)
		}
		m, err := fd.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		got = m
	})
	r.env.SpawnAfter(time.Millisecond, "dpu-side", func(p *sim.Proc) {
		fd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f-1")
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Write(p, localos.Message{Kind: "req", Payload: []byte("hello")}); err != nil {
			t.Fatal(err)
		}
	})
	r.env.Run()
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q, want hello", got.Payload)
	}
}

func TestFIFOUUIDCollision(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		if _, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "dup", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.dpuNode.FIFOInit(p, r.dpuXPID, "dup", 1); err == nil {
			t.Error("duplicate global UUID accepted")
		}
	})
	r.env.Run()
}

func TestFIFOPermissionDenied(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "priv", 1)
		if err != nil {
			t.Fatal(err)
		}
		// DPU process has no capability: connect must fail.
		if _, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "priv"); err == nil {
			t.Error("connect without capability succeeded")
		}
		// Grant read-only; write must still fail.
		obj := ObjID{Kind: "fifo", UUID: "priv"}
		if err := r.cpuNode.GrantCap(p, r.cpuXPID, r.dpuXPID, obj, PermRead); err != nil {
			t.Fatal(err)
		}
		dfd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "priv")
		if err != nil {
			t.Fatal(err)
		}
		if err := dfd.Write(p, localos.Message{}); err == nil {
			t.Error("write with read-only capability succeeded")
		}
		_ = fd
	})
	r.env.Run()
}

func TestGrantRequiresOwner(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		if _, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1); err != nil {
			t.Fatal(err)
		}
		obj := ObjID{Kind: "fifo", UUID: "f"}
		// DPU process is not the owner.
		if err := r.dpuNode.GrantCap(p, r.dpuXPID, r.dpuXPID, obj, PermRead); err == nil {
			t.Error("non-owner grant succeeded")
		}
	})
	r.env.Run()
}

func TestRevokeCap(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		if _, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1); err != nil {
			t.Fatal(err)
		}
		obj := ObjID{Kind: "fifo", UUID: "f"}
		r.cpuNode.GrantCap(p, r.cpuXPID, r.dpuXPID, obj, PermRead|PermWrite)
		if err := r.cpuNode.RevokeCap(p, r.cpuXPID, r.dpuXPID, obj, PermWrite); err != nil {
			t.Fatal(err)
		}
		if r.shim.HasCap(r.dpuXPID, obj, PermWrite) {
			t.Error("revoked permission still held")
		}
		if !r.shim.HasCap(r.dpuXPID, obj, PermRead) {
			t.Error("revoke removed unrelated permission")
		}
	})
	r.env.Run()
}

func TestFIFOCloseLazySync(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := fd.Close(p); err != nil {
			t.Fatal(err)
		}
		if _, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f"); err == nil {
			t.Error("connect to closed FIFO succeeded")
		}
	})
	r.env.Run()
	st := r.shim.Stats()
	if st.LazyQueued != 1 {
		t.Errorf("lazy queued = %d, want 1 (close must not sync eagerly)", st.LazyQueued)
	}
	if st.LazyFlushes != 0 {
		t.Errorf("lazy flushes = %d, want 0 (batch not full)", st.LazyFlushes)
	}
}

func TestLazyBatchFlushes(t *testing.T) {
	r := newRig(t)
	r.shim.lazyBatchSize = 4
	r.env.Spawn("x", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			uuid := string(rune('a' + i))
			fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, uuid, 1)
			if err != nil {
				t.Fatal(err)
			}
			fd.Close(p)
		}
	})
	r.env.Run()
	if got := r.shim.Stats().LazyFlushes; got != 2 {
		t.Errorf("lazy flushes = %d, want 2 (8 closes / batch of 4)", got)
	}
}

// TestNIPCLatencyShape reproduces the Fig 8 relationships: on the DPU,
// nIPC-Poll beats the local Linux FIFO (it bypasses the slow device kernel)
// but stays slower than the CPU's local FIFO; Base and MPSC are 1.6-2.8x
// worse than the DPU's Linux FIFO for small messages.
func TestNIPCLatencyShape(t *testing.T) {
	measure := func(mode TransportMode, size int) time.Duration {
		r := newRig(t)
		r.dpuNode.Mode = mode
		var lat time.Duration
		r.env.Spawn("cpu", func(p *sim.Proc) {
			fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 8)
			if err != nil {
				t.Fatal(err)
			}
			obj := ObjID{Kind: "fifo", UUID: "f"}
			r.cpuNode.GrantCap(p, r.cpuXPID, r.dpuXPID, obj, PermWrite)
			fd.Read(p)
		})
		r.env.SpawnAfter(10*time.Millisecond, "dpu", func(p *sim.Proc) {
			fd, err := r.dpuNode.FIFOConnect(p, r.dpuXPID, "f")
			if err != nil {
				t.Fatal(err)
			}
			start := p.Now()
			if err := fd.Write(p, localos.Message{Payload: make([]byte, size)}); err != nil {
				t.Fatal(err)
			}
			lat = p.Now().Sub(start)
		})
		r.env.Run()
		return lat
	}

	poll := measure(TransportPoll, 64)
	mpsc := measure(TransportMPSC, 64)
	base := measure(TransportBase, 64)
	linuxDPU := localos.CostsFor(&hw.PU{Kind: hw.DPU}).FIFOOp
	linuxCPU := localos.CostsFor(&hw.PU{Kind: hw.CPU}).FIFOOp

	if !(poll < mpsc && mpsc < base) {
		t.Errorf("ordering violated: poll=%v mpsc=%v base=%v", poll, mpsc, base)
	}
	if poll > linuxDPU {
		t.Errorf("nIPC-Poll (%v) not faster than DPU Linux FIFO (%v)", poll, linuxDPU)
	}
	if poll < linuxCPU {
		t.Errorf("nIPC-Poll (%v) faster than CPU Linux FIFO (%v) — too optimistic", poll, linuxCPU)
	}
	if poll < 20*time.Microsecond || poll > 35*time.Microsecond {
		t.Errorf("nIPC-Poll = %v, paper reports ~25us", poll)
	}
	ratio := float64(base) / float64(linuxDPU)
	if ratio < 1.6 || ratio > 5.5 {
		t.Errorf("nIPC-Base / Linux-DPU = %.2f, want within the paper's elevated band", ratio)
	}
	// Larger messages take longer.
	if big := measure(TransportPoll, 2048); big <= poll {
		t.Errorf("2KB write (%v) not slower than 64B write (%v)", big, poll)
	}
}

func TestXSpawnRunsBodyOnTarget(t *testing.T) {
	r := newRig(t)
	var ranOn hw.PUID = -1
	var childX XPID
	r.env.Spawn("cpu", func(p *sim.Proc) {
		x, err := r.cpuNode.XSpawn(p, r.dpuNode.PU.ID, "executor", nil,
			func(sp *sim.Proc, node *Node, self *localos.Process) {
				ranOn = node.PU.ID
			})
		if err != nil {
			t.Fatal(err)
		}
		childX = x
	})
	r.env.Run()
	if ranOn != r.dpuNode.PU.ID {
		t.Errorf("body ran on PU %d, want DPU %d", ranOn, r.dpuNode.PU.ID)
	}
	if childX.PU != r.dpuNode.PU.ID {
		t.Errorf("child xpu_pid PU = %d, want %d", childX.PU, r.dpuNode.PU.ID)
	}
}

func TestXSpawnGrantsCapvExplicitly(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("cpu", func(p *sim.Proc) {
		if _, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "shared", 1); err != nil {
			t.Fatal(err)
		}
		obj := ObjID{Kind: "fifo", UUID: "shared"}
		// Child with capv gets access; a second child without does not.
		x1, err := r.cpuNode.XSpawn(p, r.dpuNode.PU.ID, "withcap",
			map[ObjID]Perm{obj: PermWrite}, nil)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := r.cpuNode.XSpawn(p, r.dpuNode.PU.ID, "nocap", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !r.shim.HasCap(x1, obj, PermWrite) {
			t.Error("capv capability not granted")
		}
		if r.shim.HasCap(x2, obj, PermWrite) {
			t.Error("implicit permission inheritance — must be explicit only")
		}
	})
	r.env.Run()
}

func TestXSpawnUnknownPU(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("cpu", func(p *sim.Proc) {
		if _, err := r.cpuNode.XSpawn(p, hw.PUID(42), "x", nil, nil); err == nil {
			t.Error("xSpawn to unknown PU succeeded")
		}
	})
	r.env.Run()
}

func TestVirtualNodeForAccelerator(t *testing.T) {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{FPGAs: 1})
	shim := NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	shim.AddNode(m.PU(0), cpuOS)
	fpga := m.PUsOfKind(hw.FPGA)[0]
	vn := shim.AddVirtualNode(fpga, m.PU(0), cpuOS)
	if !vn.Virtual() {
		t.Error("virtual node not flagged virtual")
	}
	if shim.Node(fpga.ID) != vn {
		t.Error("virtual node not registered under accelerator PU ID")
	}
	if vn.Host.ID != 0 {
		t.Error("virtual node not hosted on the CPU")
	}
}

func TestGetXPUPID(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		x := r.cpuNode.GetXPUPID(p, r.cpuProc)
		if x != r.cpuXPID {
			t.Errorf("GetXPUPID = %v, want %v", x, r.cpuXPID)
		}
		if p.Now() == 0 {
			t.Error("GetXPUPID charged no XPUcall cost")
		}
	})
	r.env.Run()
}

func TestImmediateSyncCounted(t *testing.T) {
	r := newRig(t)
	r.env.Spawn("x", func(p *sim.Proc) {
		r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1)
		obj := ObjID{Kind: "fifo", UUID: "f"}
		r.cpuNode.GrantCap(p, r.cpuXPID, r.dpuXPID, obj, PermRead)
	})
	r.env.Run()
	if got := r.shim.Stats().ImmediateSyncs; got != 2 {
		t.Errorf("immediate syncs = %d, want 2 (init + grant)", got)
	}
}

func TestPermHas(t *testing.T) {
	p := PermRead | PermWrite
	if !p.Has(PermRead) || !p.Has(PermWrite) || p.Has(PermOwner) {
		t.Error("Perm.Has broken")
	}
	if !p.Has(PermRead | PermWrite) {
		t.Error("Perm.Has multi-bit broken")
	}
}

func TestEagerDeletesBroadcastImmediately(t *testing.T) {
	r := newRig(t)
	r.shim.EagerDeletes = true
	r.env.Spawn("x", func(p *sim.Proc) {
		fd, err := r.cpuNode.FIFOInit(p, r.cpuXPID, "f", 1)
		if err != nil {
			t.Fatal(err)
		}
		fd.Close(p)
	})
	r.env.Run()
	st := r.shim.Stats()
	if st.LazyQueued != 0 {
		t.Errorf("eager mode queued %d lazy updates", st.LazyQueued)
	}
	if st.ImmediateSyncs != 2 { // init + eager delete
		t.Errorf("immediate syncs = %d, want 2", st.ImmediateSyncs)
	}
}

func TestHandlerThreadsSerializeXPUCalls(t *testing.T) {
	makespan := func(threads int) time.Duration {
		r := newRig(t)
		r.dpuNode.SetHandlerThreads(threads)
		want := threads
		if want < 1 {
			want = 1 // SetHandlerThreads clamps
		}
		if got := r.dpuNode.HandlerThreads(); got != want {
			t.Fatalf("HandlerThreads = %d, want %d", got, want)
		}
		wg := sim.NewWaitGroup(r.env)
		var end sim.Time
		for i := 0; i < 8; i++ {
			i := i
			wg.Add(1)
			r.env.Spawn("caller", func(p *sim.Proc) {
				defer wg.Done()
				if _, err := r.dpuNode.FIFOInit(p, r.dpuXPID, string(rune('a'+i)), 1); err != nil {
					t.Error(err)
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		r.env.Spawn("waiter", func(p *sim.Proc) { wg.Wait(p) })
		r.env.Run()
		return time.Duration(end)
	}
	one := makespan(1)
	four := makespan(4)
	if four >= one {
		t.Errorf("4 handler threads (%v) not faster than 1 (%v)", four, one)
	}
	if r := makespan(0); r <= 0 { // clamps to 1
		t.Error("zero threads broke the node")
	}
}
