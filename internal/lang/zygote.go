// Zygote forest: a tree of pre-warmed templates specialized by package set.
//
// The root of each tree is the runtime's generic cfork template. Children
// fork from their parent via the same OS COW fork as cfork itself, then
// import the packages the parent does not already hold — so a node's pages
// are shared with its whole subtree and every instance forked from it, and
// the *incremental* memory cost of a node is only its residual imports.
//
// A cold start resolves the function's package set to the deepest tree node
// whose packages are a subset of the function's (forking from a superset
// would execute imports the function never asked for — import side effects
// make that unsafe, so zygotes only ever under-approximate). The cold start
// then pays only the residual imports plus the function's private tail.
//
// The fitter (Fit) grows and prunes the tree online against the observed
// per-function import mix under a configurable page budget. It is seeded
// and virtual-time driven: candidate scoring, tie-breaking, insertion and
// pruning order are all derived from canonical sorted forms and a splitmix64
// stream, never from Go map iteration or wall-clock time, so the fitted
// shape is byte-identical at every kernel worker count.
//
// Zygote templates park merged (single-threaded, forkable) like SOCK's
// zygote processes: the merge cost is paid once when the node boots, and
// forks from it skip the merge entirely.
package lang

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

// ZygoteNode is one pre-warmed template in the tree.
type ZygoteNode struct {
	ID   int
	Pkgs PkgSet // dependency-closed package set this template has imported
	Inst *Instance

	Parent   *ZygoteNode
	children []*ZygoteNode

	// residualPages is the node's incremental footprint: pages of the
	// packages it imported beyond its parent. Budget accounting charges
	// only this, because everything else is shared upward.
	residualPages int

	pins    int  // in-flight forks from this node; retire defers while > 0
	retired bool // no longer resolvable; exits when pins drain
	dead    bool // instance exited
	hits    int  // resolutions since the last fit round
	idle    int  // consecutive fit rounds with zero hits
}

// Depth returns the node's distance from the root.
func (n *ZygoteNode) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// ZygoteTreeConfig sets the fitter's knobs.
type ZygoteTreeConfig struct {
	// BudgetPages caps the summed residual pages of specialized nodes.
	// Zero means no specialized nodes ever grow: the tree stays root-only,
	// which is exactly flat cfork plus full imports on the child.
	BudgetPages int
	// FitInterval is how many observed cold starts trigger a fit round.
	FitInterval int
	// MinHits is the demand floor below which a candidate set is ignored.
	MinHits int
	// MaxGrowPerFit bounds how many nodes one fit round may boot.
	MaxGrowPerFit int
	// Seed drives the fitter's deterministic tie-breaking.
	Seed uint64
}

// DefaultZygoteTreeConfig returns the checked-in fitter defaults.
func DefaultZygoteTreeConfig() ZygoteTreeConfig {
	return ZygoteTreeConfig{
		BudgetPages:   params.ZygoteBudgetMB << 20 / params.PageSize,
		FitInterval:   params.ZygoteFitInterval,
		MinHits:       params.ZygoteMinHits,
		MaxGrowPerFit: params.ZygoteMaxGrowPerFit,
		Seed:          1,
	}
}

// ZygoteTree is a per-(runtime, PU) forest of package-specialized templates.
type ZygoteTree struct {
	Spec Spec
	OS   *localos.OS
	Root *ZygoteNode
	Cfg  ZygoteTreeConfig

	nextID    int
	usedPages int
	live      int // specialized (non-root) live nodes
	cold      int // observed cold starts since the last fit round
	fitting   bool
	gen       int // bumped by Reset; aborts in-flight fit rounds
	rounds    int

	obs     map[string]*zygoteObs
	obsKeys []string // insertion-ordered keys of obs (no map iteration)
}

type zygoteObs struct {
	pkgs  PkgSet
	count int
}

// NewZygoteTree wraps an existing generic template as the root of a tree.
func NewZygoteTree(os *localos.OS, root *Instance, cfg ZygoteTreeConfig) *ZygoteTree {
	if cfg.FitInterval <= 0 {
		cfg.FitInterval = params.ZygoteFitInterval
	}
	if cfg.MinHits <= 0 {
		cfg.MinHits = params.ZygoteMinHits
	}
	if cfg.MaxGrowPerFit <= 0 {
		cfg.MaxGrowPerFit = params.ZygoteMaxGrowPerFit
	}
	t := &ZygoteTree{
		Spec: root.Spec,
		OS:   os,
		Cfg:  cfg,
		obs:  make(map[string]*zygoteObs),
	}
	t.Root = &ZygoteNode{ID: 0, Inst: root}
	t.nextID = 1
	return t
}

// Resolve returns the deepest live node whose package set is a subset of
// pkgs — the best ancestor to fork this function from — and records the
// hit for the fitter. Runs on every zygote cold start.
//
//molecule:hotpath
func (t *ZygoteTree) Resolve(pkgs PkgSet) *ZygoteNode {
	n := t.resolveNode(pkgs)
	n.hits++
	return n
}

// resolveNode is Resolve without hit accounting (used by the fitter).
//
//molecule:hotpath
func (t *ZygoteTree) resolveNode(pkgs PkgSet) *ZygoteNode {
	n := t.Root
	for {
		var best *ZygoteNode
		var bestCost time.Duration
		for _, c := range n.children {
			if c.retired || c.dead || !pkgs.Covers(c.Pkgs) {
				continue
			}
			cost := c.Pkgs.ImportCost()
			if best == nil || cost > bestCost || (cost == bestCost && c.ID < best.ID) {
				best, bestCost = c, cost
			}
		}
		if best == nil {
			return n
		}
		n = best
	}
}

// Pin marks an in-flight fork from the node, deferring any retire.
func (t *ZygoteTree) Pin(n *ZygoteNode) { n.pins++ }

// Unpin releases a pin, reaping the node if a retire was deferred on it.
func (t *ZygoteTree) Unpin(n *ZygoteNode) {
	n.pins--
	if n.pins == 0 && n.retired {
		t.reap(n)
	}
}

// Observe records a cold start's package set for the fitter.
func (t *ZygoteTree) Observe(pkgs PkgSet) {
	t.cold++
	if len(pkgs) == 0 {
		return
	}
	k := pkgs.Key()
	if o, ok := t.obs[k]; ok {
		o.count++
		return
	}
	t.obs[k] = &zygoteObs{pkgs: pkgs, count: 1}
	t.obsKeys = append(t.obsKeys, k)
}

// NeedsFit reports whether enough cold starts accumulated to run a fit
// round (and none is already in flight). A zero budget never fits: the
// tree stays root-only, the flat-cfork arm of the comparison.
func (t *ZygoteTree) NeedsFit() bool {
	return !t.fitting && t.Cfg.BudgetPages > 0 && t.cold >= t.Cfg.FitInterval
}

// BeginFit claims the in-flight fit slot; the caller then runs Fit on a
// background proc.
func (t *ZygoteTree) BeginFit() { t.fitting = true }

// Grow boots a new specialized template for pkgs as a child of the deepest
// covering node, paying fork plus residual imports on p. Returns the
// existing node if one already holds exactly pkgs. A nil node (no error)
// means the tree was reset while booting and the fresh template was
// discarded.
func (t *ZygoteTree) Grow(p *sim.Proc, pkgs PkgSet) (*ZygoteNode, error) {
	parent := t.resolveNode(pkgs)
	if parent.Pkgs.Equal(pkgs) {
		return parent, nil
	}
	gen := t.gen
	residual := pkgs.Residual(parent.Pkgs)
	id := t.nextID
	t.nextID++
	t.Pin(parent)
	parent.Inst.MergeThreads(p)
	childProc, err := t.OS.Fork(p, parent.Inst.Proc, fmt.Sprintf("zygote-%s-%d", t.Spec.Kind, id))
	if err != nil {
		t.Unpin(parent)
		return nil, err
	}
	inst := &Instance{
		Spec:       t.Spec,
		OS:         t.OS,
		Proc:       childProc,
		baseVPN:    parent.Inst.baseVPN,
		IsTemplate: true,
		merged:     true, // parked single-threaded, ready to fork
	}
	inst.ImportResidual(p, residual, 0)
	t.Unpin(parent)
	if t.gen != gen || parent.retired || parent.dead {
		// The tree was reset (PU crash, executor kill) while this template
		// was booting: discard it, releasing its pages exactly once.
		t.OS.Exit(childProc)
		return nil, nil
	}
	node := &ZygoteNode{
		ID:            id,
		Pkgs:          pkgs,
		Inst:          inst,
		Parent:        parent,
		residualPages: residual.ImportPages(),
	}
	parent.children = append(parent.children, node)
	t.usedPages += node.residualPages
	t.live++
	return node, nil
}

// Retire removes a node from resolution. Its process exits as soon as no
// fork is in flight from it — exactly once, however the retire and the
// fork interleave.
func (t *ZygoteTree) Retire(n *ZygoteNode) {
	if n == t.Root || n.retired {
		return
	}
	n.retired = true
	if n.pins == 0 {
		t.reap(n)
	}
}

func (t *ZygoteTree) reap(n *ZygoteNode) {
	if n.dead {
		return
	}
	n.dead = true
	t.usedPages -= n.residualPages
	t.live--
	n.Inst.Exit()
	if par := n.Parent; par != nil && !par.dead {
		for i, c := range par.children {
			if c == n {
				par.children = append(par.children[:i], par.children[i+1:]...)
				break
			}
		}
	}
}

// Reset retires every specialized node (PU crash or executor kill): the
// generic root survives, pinned nodes drain before exiting, and any fit
// round in flight aborts instead of inserting into the dead shape.
func (t *ZygoteTree) Reset() {
	t.gen++
	t.cold = 0
	for _, n := range t.nodesPostOrder() {
		t.Retire(n)
	}
}

// Fit runs one fit round: score candidate package sets against observed
// demand, grow the best under the page budget, prune cold leaves, decay
// the observation counts. Deterministic for a given seed and observation
// sequence.
func (t *ZygoteTree) Fit(p *sim.Proc) {
	defer func() { t.fitting = false }()
	gen := t.gen
	t.cold = 0
	t.rounds++

	type cand struct {
		key    string
		pkgs   PkgSet
		demand int
		saved  time.Duration
	}
	cands := make(map[string]*cand)
	var order []string
	add := func(pkgs PkgSet) {
		if len(pkgs) == 0 {
			return
		}
		k := pkgs.Key()
		if _, ok := cands[k]; ok {
			return
		}
		cands[k] = &cand{key: k, pkgs: pkgs}
		order = append(order, k)
	}
	for _, k := range t.obsKeys {
		add(t.obs[k].pkgs)
	}
	// Pairwise intersections of observed sets: the shared prefixes worth
	// hoisting into interior nodes. Intersections of dependency-closed
	// sets are themselves closed.
	for i := 0; i < len(t.obsKeys); i++ {
		for j := i + 1; j < len(t.obsKeys); j++ {
			add(t.obs[t.obsKeys[i]].pkgs.Intersect(t.obs[t.obsKeys[j]].pkgs))
		}
	}

	// Demand for a candidate is the total observed count of sets it can
	// serve (sets that contain it); saved is the import time a fork from
	// it would skip relative to today's deepest covering node.
	accepted := make([]*cand, 0, len(order))
	estPages := t.usedPages
	for _, k := range order {
		c := cands[k]
		for _, ok := range t.obsKeys {
			o := t.obs[ok]
			if o.pkgs.Covers(c.pkgs) {
				c.demand += o.count
			}
		}
		if c.demand < t.Cfg.MinHits {
			continue
		}
		cover := t.resolveNode(c.pkgs)
		c.saved = c.pkgs.Residual(cover.Pkgs).ImportCost()
		if c.saved <= 0 {
			continue
		}
		accepted = append(accepted, c)
	}
	score := func(c *cand) float64 {
		return float64(c.demand) * c.saved.Seconds()
	}
	sort.Slice(accepted, func(i, j int) bool {
		si, sj := score(accepted[i]), score(accepted[j])
		if si != sj {
			return si > sj
		}
		ti := splitmix64(fnv64a(accepted[i].key) ^ t.Cfg.Seed)
		tj := splitmix64(fnv64a(accepted[j].key) ^ t.Cfg.Seed)
		if ti != tj {
			return ti < tj
		}
		return accepted[i].key < accepted[j].key
	})

	// Select greedily under the budget, then boot cheapest-first so that
	// subset nodes exist before their supersets and become their parents.
	grow := make([]*cand, 0, t.Cfg.MaxGrowPerFit)
	for _, c := range accepted {
		if len(grow) >= t.Cfg.MaxGrowPerFit {
			break
		}
		need := c.pkgs.Residual(t.resolveNode(c.pkgs).Pkgs).ImportPages()
		if estPages+need > t.Cfg.BudgetPages {
			continue
		}
		estPages += need
		grow = append(grow, c)
	}
	sort.Slice(grow, func(i, j int) bool {
		ci, cj := grow[i].pkgs.ImportCost(), grow[j].pkgs.ImportCost()
		if ci != cj {
			return ci < cj
		}
		return grow[i].key < grow[j].key
	})
	for _, c := range grow {
		if t.gen != gen {
			return
		}
		// Re-resolve at boot time: earlier boots this round may have
		// created a deeper parent, shrinking the residual.
		need := c.pkgs.Residual(t.resolveNode(c.pkgs).Pkgs).ImportPages()
		if t.usedPages+need > t.Cfg.BudgetPages {
			continue
		}
		if _, err := t.Grow(p, c.pkgs); err != nil || t.gen != gen {
			return
		}
	}

	// Prune leaves that went two full rounds without a hit, newest first.
	nodes := t.nodesPostOrder()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID > nodes[j].ID })
	for _, n := range nodes {
		if n == t.Root || n.dead || n.retired {
			continue
		}
		if n.hits == 0 {
			n.idle++
		} else {
			n.idle = 0
		}
		n.hits = 0
		if n.idle >= 2 && len(n.children) == 0 {
			t.Retire(n)
		}
	}

	// Exponential decay keeps the demand profile tracking the recent mix.
	keep := t.obsKeys[:0]
	for _, k := range t.obsKeys {
		o := t.obs[k]
		o.count /= 2
		if o.count > 0 {
			keep = append(keep, k)
		} else {
			delete(t.obs, k)
		}
	}
	t.obsKeys = keep
}

// nodesPostOrder returns every live node, children before parents, in
// deterministic (insertion) order.
func (t *ZygoteTree) nodesPostOrder() []*ZygoteNode {
	var out []*ZygoteNode
	var walk func(n *ZygoteNode)
	walk = func(n *ZygoteNode) {
		for _, c := range n.children {
			walk(c)
		}
		out = append(out, n)
	}
	walk(t.Root)
	return out
}

// LiveNodes returns the number of live specialized templates (excluding
// the root).
func (t *ZygoteTree) LiveNodes() int { return t.live }

// UsedPages returns the summed residual pages of live specialized nodes —
// the quantity the budget caps.
func (t *ZygoteTree) UsedPages() int { return t.usedPages }

// Rounds returns how many fit rounds have completed or started.
func (t *ZygoteTree) Rounds() int { return t.rounds }

// LeakedNodes counts retired nodes whose process never exited — pinned
// forever by a lost fork. Always zero unless refcounting broke.
func (t *ZygoteTree) LeakedNodes() int {
	n := 0
	for _, node := range t.nodesPostOrder() {
		if node.retired && !node.dead {
			n++
		}
	}
	return n
}

// TemplatePSSPages sums the proportional set size of every live template
// in the tree, root included. Shared ancestor pages split across sharers,
// so a deep tree costs far less than node-count × footprint.
func (t *ZygoteTree) TemplatePSSPages() float64 {
	var pss float64
	for _, n := range t.nodesPostOrder() {
		if !n.dead && !n.retired {
			pss += n.Inst.Proc.AS.PSSPages()
		}
	}
	return pss
}

// ShapeString renders the live tree canonically — the fingerprint the
// determinism suite compares across kernel worker counts.
func (t *ZygoteTree) ShapeString() string {
	var b strings.Builder
	var walk func(n *ZygoteNode, depth int)
	walk = func(n *ZygoteNode, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "#%d {%s} pages=%d\n", n.ID, n.Pkgs.Key(), n.residualPages)
		for _, c := range n.children {
			if !c.dead && !c.retired {
				walk(c, depth+1)
			}
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// fnv64a is the FNV-1a hash of a string (no dependency on hash/fnv's
// allocating writer API).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the same mixing function the runtime's jitter uses: a
// seeded, allocation-free source of deterministic tie-breaking bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
