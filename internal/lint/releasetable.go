package lint

// The release table declares, like the layer table in layers.go, which
// acquire APIs hand out a resource that must be paired with a release —
// data the releasepath analyzer walks the CFG against. Every refcounted or
// pooled handle in the tree appears here; TestReleaseTableCoversResourceTypes
// pins the table to the real APIs in both directions.

// apiRef names one method: the fully-qualified named type of its receiver
// (pointer stripped) and the method name.
type apiRef struct {
	Recv   string // e.g. "repro/internal/molecule.Runtime"
	Method string
}

// releaseRef is a release method plus where the resource goes in the call:
// the argument at index Arg, or the receiver itself when Arg == -1.
type releaseRef struct {
	apiRef
	Arg int
}

// ReleasePair pairs one acquire API with the set of calls that dispose of
// the resource it hands out.
//
// Result/PinArg locate the resource at the acquire site: Result >= 0 means
// the resource is that index of the call's results (discarding it is a
// leak by construction); Result == -1 means the call pins an existing
// object, the argument at index PinArg.
type ReleasePair struct {
	Class    string // human name used in diagnostics
	Acquire  apiRef
	Result   int
	PinArg   int
	Releases []releaseRef
}

// ReleaseTable is the source of truth for acquire/release pairings.
var ReleaseTable = []ReleasePair{
	{
		Class:   "molecule instance",
		Acquire: apiRef{Recv: "repro/internal/molecule.Runtime", Method: "acquire"},
		Result:  0, PinArg: -1,
		Releases: []releaseRef{
			{apiRef{Recv: "repro/internal/molecule.Runtime", Method: "release"}, 1},
			{apiRef{Recv: "repro/internal/molecule.Runtime", Method: "destroy"}, 1},
		},
	},
	{
		Class:   "held molecule instance",
		Acquire: apiRef{Recv: "repro/internal/molecule.Runtime", Method: "AcquireHeld"},
		Result:  0, PinArg: -1,
		Releases: []releaseRef{
			{apiRef{Recv: "repro/internal/molecule.Runtime", Method: "ReleaseHeld"}, 1},
			{apiRef{Recv: "repro/internal/molecule.Runtime", Method: "release"}, 1},
			{apiRef{Recv: "repro/internal/molecule.Runtime", Method: "destroy"}, 1},
		},
	},
	{
		Class:   "forked address space",
		Acquire: apiRef{Recv: "repro/internal/mem.AddressSpace", Method: "Fork"},
		Result:  0, PinArg: -1,
		Releases: []releaseRef{
			{apiRef{Recv: "repro/internal/mem.AddressSpace", Method: "Release"}, -1},
		},
	},
	{
		Class:   "zygote pin",
		Acquire: apiRef{Recv: "repro/internal/lang.ZygoteTree", Method: "Pin"},
		Result:  -1, PinArg: 0,
		Releases: []releaseRef{
			{apiRef{Recv: "repro/internal/lang.ZygoteTree", Method: "Unpin"}, 0},
		},
	},
}
