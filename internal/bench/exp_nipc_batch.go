package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/localos"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xpu"
)

// The batched-nIPC experiment quantifies FD.WriteBatch against per-message
// Writes: a vector of messages crosses the interconnect for one XPUcall and
// one base latency, so the fixed costs amortize across the batch while the
// bandwidth term stays proportional to the bytes moved. It is intentionally
// NOT in the experiment registry — batching is opt-in and the golden report
// pins the per-message protocol — and is reached via `molecule-bench -nipc`
// instead (BENCH_nipc.json is the committed snapshot).

// NIPCBatchPoint compares one batch size: the virtual time for k individual
// xfifo_writes vs one xfifo_writev of the same k messages.
type NIPCBatchPoint struct {
	BatchSize     int     `json:"batch_size"`
	PerMessageUS  float64 `json:"per_message_us"`     // k individual Writes, total
	BatchedUS     float64 `json:"batched_us"`         // one WriteBatch(k), total
	BatchedPerMsg float64 `json:"batched_per_msg_us"` // BatchedUS / k
	Speedup       float64 `json:"speedup"`            // PerMessageUS / BatchedUS
	ReadBatchedUS float64 `json:"read_batched_us"`    // one ReadBatch draining k
	ReadPerMsgUS  float64 `json:"read_per_message_us"`
	ReadSpeedup   float64 `json:"read_speedup"`
}

// NIPCBatchSweep is one payload size's batch-size sweep.
type NIPCBatchSweep struct {
	Mode     string           `json:"mode"`
	MsgBytes int              `json:"msg_bytes"`
	Points   []NIPCBatchPoint `json:"points"`
}

// nipcBatchRig mirrors the Fig 8 rig: a DPU caller against a CPU-homed
// XPU-FIFO, under the DPU's default polling transport.
type nipcBatchRig struct {
	env  *sim.Env
	cpuN *xpu.Node
	dpuN *xpu.Node
	cpuX xpu.XPID
	dpuX xpu.XPID
}

func newNIPCBatchRig() *nipcBatchRig {
	env := sim.NewEnv()
	m := hw.Build(env, hw.Config{DPUs: 1})
	shim := xpu.NewShim(env, m)
	cpuOS := localos.New(env, m.PU(0))
	dpuOS := localos.New(env, m.PU(1))
	r := &nipcBatchRig{env: env}
	r.cpuN = shim.AddNode(m.PU(0), cpuOS)
	r.dpuN = shim.AddNode(m.PU(1), dpuOS)
	r.cpuX = r.cpuN.Register(cpuOS.NewDetachedProcess("cpu-end"))
	r.dpuX = r.dpuN.Register(dpuOS.NewDetachedProcess("dpu-end"))
	return r
}

// nipcBatchPoint measures one (payload, batch size) cell. All four numbers
// come from the same simulation so the FIFO and link state are identical
// across the compared paths.
func nipcBatchPoint(msgBytes, k int) NIPCBatchPoint {
	r := newNIPCBatchRig()
	var perMsg, batched, readPer, readBatched time.Duration
	r.env.Spawn("bench", func(p *sim.Proc) {
		if _, err := r.cpuN.FIFOInit(p, r.cpuX, "bench", 2*k); err != nil {
			panic(err)
		}
		obj := xpu.ObjID{Kind: "fifo", UUID: "bench"}
		if err := r.cpuN.GrantCap(p, r.cpuX, r.dpuX, obj, xpu.PermWrite|xpu.PermRead); err != nil {
			panic(err)
		}
		dfd, err := r.dpuN.FIFOConnect(p, r.dpuX, "bench")
		if err != nil {
			panic(err)
		}
		msgs := make([]localos.Message, k)
		for i := range msgs {
			msgs[i] = localos.Message{Payload: make([]byte, msgBytes)}
		}

		// Write side: k per-message sends, then one vectorized send.
		start := p.Now()
		for _, m := range msgs {
			if err := dfd.Write(p, m); err != nil {
				panic(err)
			}
		}
		perMsg = p.Now().Sub(start)
		start = p.Now()
		if err := dfd.WriteBatch(p, msgs); err != nil {
			panic(err)
		}
		batched = p.Now().Sub(start)

		// Read side from the DPU: k per-message receives against the first
		// k queued, then one vectorized drain of the rest.
		start = p.Now()
		for i := 0; i < k; i++ {
			if _, err := dfd.Read(p); err != nil {
				panic(err)
			}
		}
		readPer = p.Now().Sub(start)
		start = p.Now()
		out, err := dfd.ReadBatch(p, k)
		if err != nil {
			panic(err)
		}
		if len(out) != k {
			panic(fmt.Sprintf("ReadBatch drained %d of %d", len(out), k))
		}
		readBatched = p.Now().Sub(start)
	})
	r.env.Run()
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return NIPCBatchPoint{
		BatchSize:     k,
		PerMessageUS:  us(perMsg),
		BatchedUS:     us(batched),
		BatchedPerMsg: us(batched) / float64(k),
		Speedup:       float64(perMsg) / float64(batched),
		ReadBatchedUS: us(readBatched),
		ReadPerMsgUS:  us(readPer),
		ReadSpeedup:   float64(readPer) / float64(readBatched),
	}
}

// NIPCBatch runs the batched-nIPC sweeps: per payload size, how the fixed
// XPUcall + base-latency cost amortizes as the batch grows.
func NIPCBatch() []NIPCBatchSweep {
	var sweeps []NIPCBatchSweep
	for _, msgBytes := range []int{64, 1024} {
		sw := NIPCBatchSweep{Mode: "nIPC-Poll", MsgBytes: msgBytes}
		for _, k := range []int{1, 4, 16, 64} {
			sw.Points = append(sw.Points, nipcBatchPoint(msgBytes, k))
		}
		sweeps = append(sweeps, sw)
	}
	return sweeps
}

// NIPCBatchTables renders the sweeps for the terminal report.
func NIPCBatchTables(sweeps []NIPCBatchSweep) []*metrics.Table {
	var out []*metrics.Table
	for _, sw := range sweeps {
		t := &metrics.Table{
			Title:  fmt.Sprintf("Batched nIPC — %dB messages, DPU caller (%s)", sw.MsgBytes, sw.Mode),
			Note:   "xfifo_writev vs k individual xfifo_writes to a CPU-homed FIFO",
			Header: []string{"batch", "per-msg total", "batched total", "batched/msg", "speedup", "read speedup"},
		}
		for _, pt := range sw.Points {
			t.AddRow(fmt.Sprintf("%d", pt.BatchSize),
				fmt.Sprintf("%.1fus", pt.PerMessageUS),
				fmt.Sprintf("%.1fus", pt.BatchedUS),
				fmt.Sprintf("%.2fus", pt.BatchedPerMsg),
				fmt.Sprintf("%.2fx", pt.Speedup),
				fmt.Sprintf("%.2fx", pt.ReadSpeedup),
			)
		}
		out = append(out, t)
	}
	return out
}
