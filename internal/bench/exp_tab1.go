package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/params"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "tab1",
		Title: "Contributions matrix conformance (Table 1)",
		Paper: "every abstraction/optimization checkmark, exercised live",
		Run:   runTab1,
	})
}

// runTab1 exercises each ✓ of Table 1 on a full heterogeneous machine and
// reports the measured evidence.
func runTab1() []*metrics.Table {
	t := &metrics.Table{
		Title:  "Table 1 — abstractions and optimizations per PU (live checks)",
		Header: []string{"claim", "PU(s)", "evidence", "status"},
	}
	pass := func(claim, pus, evidence string) { t.AddRow(claim, pus, evidence, "PASS") }
	fail := func(claim, pus, evidence string) { t.AddRow(claim, pus, evidence, "FAIL") }

	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID
		fpga := rt.Machine.PUsOfKind(hw.FPGA)[0].ID

		// Vectorized sandbox on every PU: deploy + invoke through the same
		// runtime abstraction.
		if err := rt.Deploy(p, "mscale",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU),
			molecule.DefaultProfile(hw.FPGA)); err != nil {
			fail("vectorized sandbox", "CPU/DPU/FPGA", err.Error())
			return
		}
		kinds := ""
		for _, pu := range []hw.PUID{0, dpu, fpga} {
			res, err := rt.Invoke(p, "mscale", molecule.InvokeOptions{PU: pu})
			if err != nil {
				fail("vectorized sandbox", "CPU/DPU/FPGA", err.Error())
				return
			}
			kinds += res.Kind.String() + " "
		}
		pass("vectorized sandbox", "CPU, DPU, FPGA", "one deployment served on "+kinds)

		// XPU-Shim nodes: native on general PUs, virtual for the FPGA.
		if rt.Shim.Node(0) != nil && rt.Shim.Node(dpu) != nil &&
			rt.Shim.Node(fpga) != nil && rt.Shim.Node(fpga).Virtual() {
			pass("XPU-Shim", "CPU, DPU, FPGA(virtual)", "shim nodes on all PUs")
		} else {
			fail("XPU-Shim", "CPU, DPU, FPGA", "missing shim node")
		}

		// cfork on CPU and DPU.
		if err := rt.Deploy(p, "image-processing",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
			fail("cfork", "CPU, DPU", err.Error())
			return
		}
		rt.ContainerRuntimeOn(0).EnsureTemplate(p, "python")
		rt.ContainerRuntimeOn(dpu).EnsureTemplate(p, "python")
		cCPU, err1 := rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: 0, ForceCold: true})
		cDPU, err2 := rt.Invoke(p, "image-processing", molecule.InvokeOptions{PU: dpu, ForceCold: true})
		if err1 == nil && err2 == nil && cCPU.Startup < 50*time.Millisecond {
			pass("cfork", "CPU, DPU", fmt.Sprintf("cold starts %v / %v", cCPU.Startup, cDPU.Startup))
		} else {
			fail("cfork", "CPU, DPU", "cold start too slow or failed")
		}

		// Vectorized-sandbox caching on FPGA: second mscale invoke hits the
		// cached image.
		warm, err := rt.Invoke(p, "mscale", molecule.InvokeOptions{PU: fpga})
		if err == nil && !warm.Cold && rt.RunFOn(fpga).Cached("mscale") {
			pass("V.S. caching", "FPGA", fmt.Sprintf("warm-image invoke %v", warm.Total))
		} else {
			fail("V.S. caching", "FPGA", "image cache miss")
		}

		// nIPC DAG across CPU and DPU.
		pair := []string{"alexa-frontend", "alexa-interact"}
		for _, fn := range pair {
			if err := rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); err != nil {
				fail("nIPC DAG", "CPU<->DPU", err.Error())
				return
			}
		}
		rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: []hw.PUID{0, dpu}})
		cres, err := rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: []hw.PUID{0, dpu}})
		if err == nil && cres.EdgeLatency[0] < time.Millisecond {
			pass("nIPC DAG", "CPU, DPU, FPGA", fmt.Sprintf("cross-PU edge %v", cres.EdgeLatency[0]))
		} else {
			fail("nIPC DAG", "CPU<->DPU", "edge too slow")
		}

		// Communication methods.
		lr, okR := rt.Machine.LinkBetween(0, dpu)
		ld, okD := rt.Machine.LinkBetween(0, fpga)
		if okR && lr.Kind == hw.LinkRDMA && okD && ld.Kind == hw.LinkDMA {
			pass("comm: RDMA / DMA", "CPU<->DPU / CPU<->FPGA",
				fmt.Sprintf("base latencies %v / %v", lr.BaseLat, ld.BaseLat))
		} else {
			fail("comm: RDMA / DMA", "-", "wrong link kinds")
		}
		li, okI := rt.Machine.LinkBetween(dpu, fpga)
		if okI && li.BaseLat == params.RDMABaseLatency+params.DMABaseLatency {
			pass("comm: CPU-intercepted", "DPU<->FPGA",
				fmt.Sprintf("two-hop base latency %v", li.BaseLat))
		} else {
			fail("comm: CPU-intercepted", "DPU<->FPGA", "not routed through the host")
		}
		if rt.Machine.PU(fpga).Device.Retention() {
			pass("comm: Shm (DRAM retention)", "FPGA<->FPGA", "retention enabled on device")
		} else {
			fail("comm: Shm (DRAM retention)", "FPGA<->FPGA", "retention disabled")
		}
	})
	return []*metrics.Table{t}
}
