package bench

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/molecule"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ObsDemo runs the quickstart workload — cold then warm helloworld, a
// DPU-pinned invoke, and a scatter-placed two-function chain — with
// observability attached, and returns the observer for export. The span
// tree covers the full invocation path (gateway-less here: invoke →
// placement → nIPC → sandbox → handler), and the chain's cross-PU FIFO
// traffic populates the per-link nIPC counters. The regular experiments
// never attach an observer, so their golden report bytes are unaffected.
func ObsDemo() (*obs.Observer, error) {
	var o *obs.Observer
	var demoErr error
	sandboxed(func(p *sim.Proc) {
		rt := newMolecule(p, hw.Config{DPUs: 1, FPGAs: 1}, molecule.DefaultOptions())
		o = obs.New(p.Env())
		rt.SetObserver(o)
		dpu := rt.Machine.PUsOfKind(hw.DPU)[0].ID

		if demoErr = rt.Deploy(p, "helloworld",
			molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); demoErr != nil {
			return
		}
		// Cold start on the host, then a warm hit on the same instance.
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.DefaultInvokeOptions()); demoErr != nil {
			return
		}
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.DefaultInvokeOptions()); demoErr != nil {
			return
		}
		// A DPU-pinned cold start sends executor commands over the
		// interconnect (the nipc.command span).
		if _, demoErr = rt.Invoke(p, "helloworld", molecule.InvokeOptions{PU: dpu}); demoErr != nil {
			return
		}
		// A chain scattered across host and DPU drives request/response
		// payloads through XPU-FIFOs, filling the per-link byte counters.
		pair := []string{"alexa-frontend", "alexa-interact"}
		for _, fn := range pair {
			if demoErr = rt.Deploy(p, fn,
				molecule.DefaultProfile(hw.CPU), molecule.DefaultProfile(hw.DPU)); demoErr != nil {
				return
			}
		}
		if _, demoErr = rt.InvokeChain(p, pair, molecule.ChainOptions{Placement: []hw.PUID{0, dpu}}); demoErr != nil {
			return
		}
	})
	if demoErr != nil {
		return nil, fmt.Errorf("bench: observability demo: %w", demoErr)
	}
	return o, nil
}
