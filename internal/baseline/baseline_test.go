package baseline

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func homoRig(cfg hw.Config) (*sim.Env, *Homo) {
	env := sim.NewEnv()
	m := hw.Build(env, cfg)
	return env, NewHomo(env, m, workloads.NewRegistry())
}

func TestHomoColdStartIncludesDeps(t *testing.T) {
	env, h := homoRig(hw.Config{})
	env.Spawn("x", func(p *sim.Proc) {
		res, err := h.Invoke(p, "image-processing", 0, workloads.Arg{}, true)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cold {
			t.Error("forced cold start not cold")
		}
		// Baseline cold boot (85.55ms) + dep import (96ms) ≈ 181ms.
		if res.Startup < 170*time.Millisecond || res.Startup > 195*time.Millisecond {
			t.Errorf("cold startup = %v, want ~181ms", res.Startup)
		}
	})
	env.Run()
}

func TestHomoWarmReuse(t *testing.T) {
	env, h := homoRig(hw.Config{})
	env.Spawn("x", func(p *sim.Proc) {
		cold, _ := h.Invoke(p, "matmul", 0, workloads.Arg{}, false)
		warm, err := h.Invoke(p, "matmul", 0, workloads.Arg{}, false)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Cold {
			t.Error("second invoke cold")
		}
		if warm.Total >= cold.Total {
			t.Error("warm not faster than cold")
		}
		// Fig 14b: warm latency ≈ exec cost (1.4ms) + small dispatch.
		if warm.Total > 3*time.Millisecond {
			t.Errorf("warm matmul = %v, want ~1.75ms", warm.Total)
		}
	})
	env.Run()
}

func TestHomoDPUSlower(t *testing.T) {
	env, h := homoRig(hw.Config{DPUs: 1})
	env.Spawn("x", func(p *sim.Proc) {
		cpu, err := h.Invoke(p, "image-resize", 0, workloads.Arg{}, true)
		if err != nil {
			t.Fatal(err)
		}
		dpu, err := h.Invoke(p, "image-resize", 1, workloads.Arg{}, true)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(dpu.Total) / float64(cpu.Total)
		// Fig 14c: BF-1 cold end-to-end is 4-7x the CPU's.
		if ratio < 4 || ratio > 7 {
			t.Errorf("DPU/CPU cold = %.2f, want 4-7", ratio)
		}
	})
	env.Run()
}

func TestHomoRejectsUnknownPU(t *testing.T) {
	env, h := homoRig(hw.Config{FPGAs: 1})
	env.Spawn("x", func(p *sim.Proc) {
		fpga := h.Machine.PUsOfKind(hw.FPGA)[0]
		if _, err := h.Invoke(p, "matmul", fpga.ID, workloads.Arg{}, false); err == nil {
			t.Error("homo ran a function on an FPGA — it must not manage accelerators")
		}
		if _, err := h.Invoke(p, "nope", 0, workloads.Arg{}, false); err == nil {
			t.Error("unknown function accepted")
		}
	})
	env.Run()
}

// TestFig14eAlexaBaseline: warmed baseline Alexa chain on the CPU lands
// near the paper's 38.6ms label.
func TestFig14eAlexaBaseline(t *testing.T) {
	env, h := homoRig(hw.Config{})
	env.Spawn("x", func(p *sim.Proc) {
		chain := workloads.AlexaChain()
		if _, err := h.InvokeChain(p, chain, nil, workloads.Arg{}); err != nil {
			t.Fatal(err) // boots instances
		}
		res, err := h.InvokeChain(p, chain, nil, workloads.Arg{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Total.Seconds() * 1000
		if got < 34 || got > 43 {
			t.Errorf("warm baseline Alexa = %.1fms, want ~38.6ms", got)
		}
		if len(res.EdgeLatency) != 4 {
			t.Fatalf("edges = %d, want 4", len(res.EdgeLatency))
		}
		// Fig 12-a: baseline CPU-CPU edges ~2.8ms.
		for i, el := range res.EdgeLatency {
			ms := el.Seconds() * 1000
			if ms < 2.3 || ms > 3.6 {
				t.Errorf("edge %d = %.2fms, want ~2.8ms", i, ms)
			}
		}
	})
	env.Run()
}

// TestFig14eMapReduceBaseline: warmed baseline MapReduce ≈ 20ms (Flask hops
// are heavier than Express ones).
func TestFig14eMapReduceBaseline(t *testing.T) {
	env, h := homoRig(hw.Config{})
	env.Spawn("x", func(p *sim.Proc) {
		chain := workloads.MapReduceChain()
		h.InvokeChain(p, chain, nil, workloads.Arg{})
		res, err := h.InvokeChain(p, chain, nil, workloads.Arg{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Total.Seconds() * 1000
		if got < 17 || got > 24 {
			t.Errorf("warm baseline MapReduce = %.1fms, want ~20ms", got)
		}
	})
	env.Run()
}

func TestEdgeLatencyOrdering(t *testing.T) {
	env, h := homoRig(hw.Config{DPUs: 1})
	_ = env
	cpu := h.EdgeLatencyOneWay(0, 0, lang.Node, 512)
	cross := h.EdgeLatencyOneWay(0, 1, lang.Node, 512)
	dpu := h.EdgeLatencyOneWay(1, 1, lang.Node, 512)
	if !(cpu < cross && cross < dpu) {
		t.Errorf("edge ordering violated: cpu=%v cross=%v dpu=%v", cpu, cross, dpu)
	}
	flask := h.EdgeLatencyOneWay(0, 0, lang.Python, 512)
	if flask <= cpu {
		t.Error("Flask edge not heavier than Express edge")
	}
}

func TestChainErrors(t *testing.T) {
	env, h := homoRig(hw.Config{})
	env.Spawn("x", func(p *sim.Proc) {
		if _, err := h.InvokeChain(p, nil, nil, workloads.Arg{}); err == nil {
			t.Error("empty chain accepted")
		}
		if _, err := h.InvokeChain(p, []string{"a", "b"}, []hw.PUID{0}, workloads.Arg{}); err == nil {
			t.Error("mismatched placement accepted")
		}
		if _, err := h.InvokeChain(p, []string{"nope"}, nil, workloads.Arg{}); err == nil {
			t.Error("unknown function accepted")
		}
	})
	env.Run()
}

func TestCommercialModels(t *testing.T) {
	env := sim.NewEnv()
	env.Spawn("x", func(p *sim.Proc) {
		l := AWSLambda()
		w := OpenWhisk()
		if l.ColdStart(p) <= 0 || w.Communicate(p) <= 0 {
			t.Error("commercial latencies not positive")
		}
		if l.Startup >= w.Startup {
			t.Error("expected OpenWhisk cold start above Lambda's")
		}
		if l.Comm <= w.Comm {
			t.Error("expected Lambda step-function comm above OpenWhisk's")
		}
	})
	env.Run()
}
