// Per-package import cost model for the zygote forest.
//
// The paper's cfork forks every cold start from one generic template per
// runtime, so each child still pays the full dependency-import cost at
// specialization time — the dominant term of the Fig 11a breakdown. The
// OpenLambda lineage (SOCK zygotes; Forklift's fitted zygote trees) shows
// that imports decompose per package: a template that has already imported a
// function's packages lets the fork skip them, and COW keeps the imported
// pages shared down the whole tree.
//
// This file models that decomposition: a small catalog of packages, each
// with an import CPU cost (scaled by the PU's startup factor, like every
// other startup-path cost in this package) and a resident-page footprint,
// linked by a dependency DAG. A function's manifest names its direct
// imports; Closure expands them. Catalog costs are calibrated so that each
// function's closure cost stays at or below its measured DepImport time —
// the remainder is the function's private import tail, initialization work
// (app code, config, connections) that no template can pre-run.
package lang

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/params"
)

// Package is one entry of the import-cost catalog.
type Package struct {
	Name   string
	Import time.Duration // CPU time to import on a host CPU core
	Pages  int           // resident pages the import maps
	Deps   []string      // direct dependencies (imported first)
}

func mbPages(mb int) int { return mb << 20 / params.PageSize }

// catalogList is the fixed package catalog, in a deterministic order.
// Import costs and footprints are loosely modeled on the FunctionBench
// dependency sets the workload catalog uses (numpy, pillow, jinja2, ...),
// calibrated so every function's dependency closure costs no more than its
// calibrated DepImport time.
var catalogList = []Package{
	{Name: "pyutils", Import: 6 * time.Millisecond, Pages: mbPages(1)},
	{Name: "numpy", Import: 36 * time.Millisecond, Pages: mbPages(9), Deps: []string{"pyutils"}},
	{Name: "blas", Import: 60 * time.Millisecond, Pages: mbPages(12), Deps: []string{"numpy"}},
	{Name: "pillow", Import: 30 * time.Millisecond, Pages: mbPages(6), Deps: []string{"pyutils"}},
	{Name: "imageops", Import: 24 * time.Millisecond, Pages: mbPages(4), Deps: []string{"pillow", "numpy"}},
	{Name: "jinja2", Import: 18 * time.Millisecond, Pages: mbPages(2), Deps: []string{"pyutils"}},
	{Name: "templating", Import: 48 * time.Millisecond, Pages: mbPages(5), Deps: []string{"jinja2"}},
	{Name: "crypto", Import: 28 * time.Millisecond, Pages: mbPages(3), Deps: []string{"pyutils"}},
	{Name: "fileio", Import: 22 * time.Millisecond, Pages: mbPages(2), Deps: []string{"pyutils"}},
	{Name: "zlibx", Import: 30 * time.Millisecond, Pages: mbPages(3), Deps: []string{"fileio"}},
	{Name: "ffmpeg", Import: 290 * time.Millisecond, Pages: mbPages(20), Deps: []string{"pyutils"}},
	{Name: "httpkit", Import: 34 * time.Millisecond, Pages: mbPages(4), Deps: []string{"pyutils"}},
	{Name: "nodeutils", Import: 8 * time.Millisecond, Pages: mbPages(1)},
	{Name: "alexa-sdk", Import: 24 * time.Millisecond, Pages: mbPages(3), Deps: []string{"nodeutils"}},
}

var catalog = func() map[string]*Package {
	m := make(map[string]*Package, len(catalogList))
	for i := range catalogList {
		m[catalogList[i].Name] = &catalogList[i]
	}
	return m
}()

// LookupPackage returns the catalog entry for a package name.
func LookupPackage(name string) (*Package, bool) {
	p, ok := catalog[name]
	return p, ok
}

// CatalogNames returns every catalog package name in catalog order.
func CatalogNames() []string {
	out := make([]string, len(catalogList))
	for i := range catalogList {
		out[i] = catalogList[i].Name
	}
	return out
}

// PkgSet is a dependency-closed package set: sorted, unique names whose
// transitive dependencies are all members. The canonical form makes subset
// tests a single merge walk and set identity a string compare.
type PkgSet []string

// Closure resolves the given direct imports to a canonical PkgSet,
// expanding transitive dependencies. Unknown packages are an error.
func Closure(names []string) (PkgSet, error) {
	if len(names) == 0 {
		return nil, nil
	}
	seen := make(map[string]bool, len(names)*2)
	var visit func(name string) error
	visit = func(name string) error {
		if seen[name] {
			return nil
		}
		pkg, ok := catalog[name]
		if !ok {
			return fmt.Errorf("lang: unknown package %q", name)
		}
		seen[name] = true
		for _, d := range pkg.Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range names {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	out := make(PkgSet, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// Covers reports whether sub ⊆ s. Both sets must be canonical (sorted,
// unique). It allocates nothing: a zygote resolves every cold start
// through it.
//
//molecule:hotpath
func (s PkgSet) Covers(sub PkgSet) bool {
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two canonical sets hold the same packages.
func (s PkgSet) Equal(o PkgSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Residual returns s minus covered: the packages a fork from a template
// holding covered must still import.
func (s PkgSet) Residual(covered PkgSet) PkgSet {
	if len(covered) == 0 {
		return s
	}
	var out PkgSet
	i := 0
	for _, name := range s {
		for i < len(covered) && covered[i] < name {
			i++
		}
		if i < len(covered) && covered[i] == name {
			continue
		}
		out = append(out, name)
	}
	return out
}

// Intersect returns s ∩ o. The intersection of two dependency-closed sets
// is itself dependency-closed.
func (s PkgSet) Intersect(o PkgSet) PkgSet {
	var out PkgSet
	i := 0
	for _, name := range s {
		for i < len(o) && o[i] < name {
			i++
		}
		if i < len(o) && o[i] == name {
			out = append(out, name)
		}
	}
	return out
}

// ImportCost sums the host-CPU import time of every member.
func (s PkgSet) ImportCost() time.Duration {
	var d time.Duration
	for _, name := range s {
		if pkg, ok := catalog[name]; ok {
			d += pkg.Import
		}
	}
	return d
}

// ImportPages sums the resident pages every member maps when imported.
func (s PkgSet) ImportPages() int {
	n := 0
	for _, name := range s {
		if pkg, ok := catalog[name]; ok {
			n += pkg.Pages
		}
	}
	return n
}

// Key returns the canonical string identity of the set.
func (s PkgSet) Key() string {
	return strings.Join(s, ",")
}
