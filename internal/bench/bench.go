// Package bench is the benchmark harness: one experiment per table and
// figure of the paper's evaluation section. Each experiment builds the
// relevant simulated machine, runs the workload on Molecule and its
// baselines, and reports the same rows/series the paper reports.
//
// The harness backs both the root-level testing.B benchmarks and the
// cmd/molecule-bench CLI.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/molecule"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Experiment reproduces one table or figure.
type Experiment struct {
	ID    string // e.g. "fig10c", "tab4"
	Title string
	Paper string // the headline claim being reproduced
	Run   func() []*metrics.Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in evaluation-section order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, k := range []string{
		"fig2a", "fig2b", "fig8", "fig9", "fig10ab", "fig10c", "tab4",
		"fig11a", "fig11bc", "fig12", "fig13", "fig14a", "fig14b", "fig14c",
		"fig14d", "fig14e", "fig14f", "fig14g", "fig14h", "fig15", "tab1", "tab5",
	} {
		if k == id {
			return i
		}
	}
	return 1 << 20
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment and prints its tables to w.
func RunAll(w io.Writer) {
	for _, e := range All() {
		fmt.Fprintf(w, "### %s — %s\n    paper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range e.Run() {
			t.Fprint(w)
		}
	}
}

// RunAllMarkdown executes every experiment and writes a markdown report.
func RunAllMarkdown(w io.Writer) {
	fmt.Fprintln(w, "# Molecule reproduction — experiment report")
	fmt.Fprintln(w)
	for _, e := range All() {
		fmt.Fprintf(w, "## %s — %s\n\n> paper: %s\n\n", e.ID, e.Title, e.Paper)
		for _, t := range e.Run() {
			t.Markdown(w)
		}
	}
}

// sandboxed runs body as the driver process of a fresh simulation and
// returns after the simulation drains.
func sandboxed(body func(p *sim.Proc)) {
	env := sim.NewEnv()
	env.Spawn("bench-driver", func(p *sim.Proc) { body(p) })
	env.Run()
}

// newMolecule builds a Molecule runtime inside the driver process.
func newMolecule(p *sim.Proc, cfg hw.Config, opts molecule.Options) *molecule.Runtime {
	m := hw.Build(p.Env(), cfg)
	rt, err := molecule.New(p, m, workloads.NewRegistry(), opts)
	if err != nil {
		panic(err)
	}
	return rt
}

// fd formats a duration cell.
func fd(d time.Duration) string { return metrics.FmtDur(d) }

// fr formats a ratio cell.
func fr(r float64) string { return metrics.FmtRatio(r) }
