package molecule

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestAutoScalerServesAtMin(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "matmul"); err != nil {
			t.Fatal(err)
		}
		a, err := rt.NewAutoScaler(p, "matmul", 0, DefaultAutoScalerOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := a.Serve(p, workloads.Arg{}); err != nil {
				t.Fatal(err)
			}
		}
		cur, peak, outs, ins := a.Stats()
		if cur != 1 || peak != 1 || outs != 0 || ins != 0 {
			t.Errorf("sequential load scaled: cur=%d peak=%d outs=%d ins=%d", cur, peak, outs, ins)
		}
		a.Close(p)
	})
}

func TestAutoScalerScalesOutUnderBurst(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil { // 19.5ms exec
			t.Fatal(err)
		}
		opts := DefaultAutoScalerOptions()
		opts.TargetQueue = 2 * time.Millisecond
		opts.Max = 8
		a, err := rt.NewAutoScaler(p, "pyaes", 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		// A burst of 8 concurrent requests against 1 resident.
		wg := sim.NewWaitGroup(rt.Env)
		var worst time.Duration
		for i := 0; i < 8; i++ {
			wg.Add(1)
			rt.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				lat, err := a.Serve(cp, workloads.Arg{})
				if err != nil {
					t.Error(err)
					return
				}
				if lat > worst {
					worst = lat
				}
			})
		}
		wg.Wait(p)
		_, peak, outs, _ := a.Stats()
		if peak < 3 {
			t.Errorf("peak residents = %d, want scale-out under burst", peak)
		}
		if outs == 0 {
			t.Error("no scale-outs recorded")
		}
		// With scale-out, the worst request must beat full serialization
		// (8 x ~20ms) despite cold starts.
		if worst > 120*time.Millisecond {
			t.Errorf("worst latency %v — scale-out ineffective", worst)
		}
		a.Close(p)
	})
}

func TestAutoScalerRespectsMax(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil {
			t.Fatal(err)
		}
		opts := DefaultAutoScalerOptions()
		opts.TargetQueue = time.Millisecond
		opts.Max = 2
		a, err := rt.NewAutoScaler(p, "pyaes", 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		wg := sim.NewWaitGroup(rt.Env)
		for i := 0; i < 6; i++ {
			wg.Add(1)
			rt.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				if _, err := a.Serve(cp, workloads.Arg{}); err != nil {
					t.Error(err)
				}
			})
		}
		wg.Wait(p)
		if cur, peak, _, _ := a.Stats(); cur > 2 || peak > 2 {
			t.Errorf("pool exceeded Max: cur=%d peak=%d", cur, peak)
		}
		a.Close(p)
	})
}

func TestAutoScalerShrinksWhenIdle(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil {
			t.Fatal(err)
		}
		opts := DefaultAutoScalerOptions()
		opts.TargetQueue = time.Millisecond
		opts.Max = 8
		opts.IdleTimeout = 100 * time.Millisecond
		a, err := rt.NewAutoScaler(p, "pyaes", 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		wg := sim.NewWaitGroup(rt.Env)
		for i := 0; i < 6; i++ {
			wg.Add(1)
			rt.Env.Spawn("req", func(cp *sim.Proc) {
				defer wg.Done()
				a.Serve(cp, workloads.Arg{})
			})
		}
		wg.Wait(p)
		if retired := a.ShrinkIdle(p); retired != 0 {
			t.Error("shrink before idle timeout retired residents")
		}
		p.Sleep(150 * time.Millisecond)
		if retired := a.ShrinkIdle(p); retired == 0 {
			t.Error("idle pool not shrunk")
		}
		cur, _, _, ins := a.Stats()
		if cur != opts.Min || ins == 0 {
			t.Errorf("after shrink: cur=%d ins=%d, want Min=%d", cur, ins, opts.Min)
		}
		a.Close(p)
	})
}

func TestAutoScalerUndeployed(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if _, err := rt.NewAutoScaler(p, "nope", 0, DefaultAutoScalerOptions()); err == nil {
			t.Error("autoscaler for undeployed function created")
		}
	})
}

// TestAutoScalerCloseWithInFlightRequest: a request completing after Close
// must not panic; its resident parks on the idle list.
func TestAutoScalerCloseWithInFlightRequest(t *testing.T) {
	run(t, hw.Config{}, DefaultOptions(), func(p *sim.Proc, rt *Runtime) {
		if err := rt.Deploy(p, "pyaes"); err != nil {
			t.Fatal(err)
		}
		a, err := rt.NewAutoScaler(p, "pyaes", 0, DefaultAutoScalerOptions())
		if err != nil {
			t.Fatal(err)
		}
		done := sim.NewEvent(rt.Env)
		rt.Env.Spawn("slow-req", func(cp *sim.Proc) {
			if _, err := a.Serve(cp, workloads.Arg{}); err != nil {
				t.Error(err)
			}
			done.Trigger(nil)
		})
		p.Sleep(time.Millisecond) // request takes the only resident
		a.Close(p)                // operator tears down mid-flight
		done.Wait(p)              // the request still completes cleanly
	})
}
