package attrib

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// buildSpans runs body as a simulated process with a fresh tracer and
// returns the recorded span snapshot. Virtual time starts at 0 and only
// advances through p.Sleep, so every span edge is exact.
func buildSpans(t *testing.T, body func(p *sim.Proc, tr *obs.Tracer)) []obs.Span {
	t.Helper()
	env := sim.NewEnv()
	tr := obs.NewTracer(env)
	env.Spawn("span-builder", func(p *sim.Proc) { body(p, tr) })
	env.Run()
	return tr.Spans()
}

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// TestPlainInvokeExact pins the decomposition of a single cold invoke: the
// root's self-time is dispatch, acquire's self-time and sandbox.start are
// cold-start init, sandbox.create is the fork, and the handler is itself.
func TestPlainInvokeExact(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		root := tr.Start(nil, "invoke", 0)
		root.SetAttr("fn", "f")
		p.Sleep(ms(1)) // dispatch head
		acq := tr.Start(root, "sandbox.acquire", -1)
		pl := tr.Start(acq, "placement", -1)
		pl.Finish()    // zero-width: placement takes no virtual time here
		p.Sleep(ms(1)) // acquire self (init bookkeeping)
		cs := tr.Start(acq, "sandbox.create", 0)
		p.Sleep(ms(2))
		cs.Finish()
		ss := tr.Start(acq, "sandbox.start", 0)
		p.Sleep(ms(3))
		ss.Finish()
		acq.Finish()
		hs := tr.Start(root, "handler", 0)
		p.Sleep(ms(4))
		hs.Finish()
		p.Sleep(ms(1)) // dispatch tail
		root.SetAttr("pu", "0")
		root.Finish()
	})

	a := Analyze(spans, Options{PUKind: func(pu int) string { return "CPU" }})
	if len(a.Invocations) != 1 {
		t.Fatalf("got %d invocations, want 1", len(a.Invocations))
	}
	inv := a.Invocations[0]
	if inv.Fn != "f" || inv.PU != 0 || inv.Kind != "CPU" || inv.Err {
		t.Fatalf("identity = {fn %q pu %d kind %q err %v}", inv.Fn, inv.PU, inv.Kind, inv.Err)
	}
	if inv.Total != ms(12) {
		t.Fatalf("total = %v, want 12ms", inv.Total)
	}
	if r := inv.Residue(); r != 0 {
		t.Fatalf("residue = %v, want 0", r)
	}
	want := map[Stage]time.Duration{
		StageDispatch: ms(2), // root self: 1ms head + 1ms tail
		StageColdFork: ms(2), // sandbox.create
		StageColdInit: ms(4), // acquire self 1ms + sandbox.start 3ms
		StageHandler:  ms(4),
	}
	for _, st := range AllStages() {
		if got := inv.Stages.Get(st); got != want[st] {
			t.Errorf("stage %s = %v, want %v", st, got, want[st])
		}
	}
}

// TestRetryOverlapExact pins the preemption rule under recovery: a timed-out
// attempt's span is still open (abandoned, running in the background) when
// the backoff and the retry begin; the sweep charges it only up to the
// instant its successor starts, so the decomposition stays exact.
func TestRetryOverlapExact(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		root := tr.Start(nil, "invoke.recover", 0)
		root.SetAttr("fn", "f")
		a1 := tr.Start(root, "invoke", 0)
		a1.SetAttr("fn", "f")
		a1.SetAttr("error", "timeout") // abandoned attempt, never finished
		_ = a1
		p.Sleep(ms(10))
		bs := tr.Start(root, "retry.backoff", 0)
		p.Sleep(ms(2))
		bs.Finish()
		a2 := tr.Start(root, "invoke", 0)
		a2.SetAttr("fn", "f")
		h := tr.Start(a2, "handler", 1)
		p.Sleep(ms(7))
		h.Finish()
		p.Sleep(ms(1))
		a2.Finish()
		root.SetAttr("pu", "1")
		root.SetAttr("retries", "1")
		root.Finish()
	})

	a := Analyze(spans, Options{})
	if len(a.Invocations) != 1 {
		t.Fatalf("got %d invocations, want 1", len(a.Invocations))
	}
	inv := a.Invocations[0]
	if inv.Err {
		t.Fatalf("invocation marked failed; abandoned attempt's error attr leaked into identity")
	}
	if inv.PU != 1 {
		t.Fatalf("pu = %d, want 1 (from the settled recover root)", inv.PU)
	}
	if r := inv.Residue(); r != 0 {
		t.Fatalf("residue = %v, want 0", r)
	}
	if inv.Total != ms(20) {
		t.Fatalf("total = %v, want 20ms", inv.Total)
	}
	// Attempt 1 owns [0, 10ms) (clipped by the backoff), the backoff owns
	// [10, 12), attempt 2 owns [12, 20).
	want := map[Stage]time.Duration{
		StageDispatch:     ms(11), // a1 self 10ms + a2 self 1ms
		StageRetryBackoff: ms(2),
		StageHandler:      ms(7),
	}
	for _, st := range AllStages() {
		if got := inv.Stages.Get(st); got != want[st] {
			t.Errorf("stage %s = %v, want %v", st, got, want[st])
		}
	}
	// The winning attempt is the settled invoke that closes the root.
	if inv.Win.Name != "invoke" || inv.Win.End != inv.Root.End {
		t.Fatalf("win = %s ending %v, want the invoke closing the root at %v",
			inv.Win.Name, inv.Win.End, inv.Root.End)
	}
	if inv.Win.ID == inv.Root.ID {
		t.Fatalf("win fell back to the root; the settled attempt was not found")
	}
}

// TestGatewayQueueWait pins gateway self-time landing in queue.wait and the
// identity coming from the nested invoke span.
func TestGatewayQueueWait(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		g := tr.Start(nil, "gateway.request", -1)
		g.SetAttr("fn", "f")
		p.Sleep(ms(3)) // queued
		in := tr.Start(g, "invoke", 0)
		in.SetAttr("fn", "f")
		in.SetAttr("pu", "2")
		p.Sleep(ms(5))
		in.Finish()
		g.Finish()
	})

	a := Analyze(spans, Options{})
	if len(a.Invocations) != 1 {
		t.Fatalf("got %d invocations, want 1", len(a.Invocations))
	}
	inv := a.Invocations[0]
	if inv.Fn != "f" || inv.PU != 2 {
		t.Fatalf("identity = {fn %q pu %d}", inv.Fn, inv.PU)
	}
	if got := inv.Stages.Get(StageQueueWait); got != ms(3) {
		t.Fatalf("queue.wait = %v, want 3ms", got)
	}
	if got := inv.Stages.Get(StageDispatch); got != ms(5) {
		t.Fatalf("dispatch = %v, want 5ms", got)
	}
	if r := inv.Residue(); r != 0 {
		t.Fatalf("residue = %v, want 0", r)
	}
}

// TestOpenRootSkipped: an in-flight invocation cannot be decomposed exactly
// and must be skipped, not misattributed.
func TestOpenRootSkipped(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		root := tr.Start(nil, "invoke", 0)
		root.SetAttr("fn", "f")
		p.Sleep(ms(5))
		// never finished
	})
	a := Analyze(spans, Options{})
	if len(a.Invocations) != 0 {
		t.Fatalf("got %d invocations from an open root, want 0", len(a.Invocations))
	}
}

// TestUnknownSpanLandsInOther: a span name outside the taxonomy must surface
// as StageOther, never silently vanish.
func TestUnknownSpanLandsInOther(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		root := tr.Start(nil, "invoke", 0)
		root.SetAttr("fn", "f")
		x := tr.Start(root, "mystery.stage", -1)
		p.Sleep(ms(4))
		x.Finish()
		root.Finish()
	})
	a := Analyze(spans, Options{})
	if len(a.Invocations) != 1 {
		t.Fatalf("got %d invocations, want 1", len(a.Invocations))
	}
	inv := a.Invocations[0]
	if got := inv.Stages.Get(StageOther); got != ms(4) {
		t.Fatalf("other = %v, want 4ms", got)
	}
	if r := inv.Residue(); r != 0 {
		t.Fatalf("residue = %v, want 0", r)
	}
}

// TestFoldedDeterministic pins the folded-profile bytes: sorted paths,
// fn-prefixed stacks, self-time in virtual nanoseconds.
func TestFoldedDeterministic(t *testing.T) {
	build := func() []obs.Span {
		return buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
			root := tr.Start(nil, "invoke", 0)
			root.SetAttr("fn", "f")
			p.Sleep(ms(1))
			h := tr.Start(root, "handler", 0)
			p.Sleep(ms(2))
			h.Finish()
			root.Finish()
		})
	}
	var b1, b2 bytes.Buffer
	if err := Analyze(build(), Options{}).WriteFolded(&b1); err != nil {
		t.Fatal(err)
	}
	if err := Analyze(build(), Options{}).WriteFolded(&b2); err != nil {
		t.Fatal(err)
	}
	want := "f;invoke 1000000\nf;invoke;handler 2000000\n"
	if b1.String() != want {
		t.Fatalf("folded =\n%q\nwant\n%q", b1.String(), want)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("folded output differs across identical runs")
	}
}

// TestRowsAggregate pins the per-(fn, kind) grouping and ordering.
func TestRowsAggregate(t *testing.T) {
	spans := buildSpans(t, func(p *sim.Proc, tr *obs.Tracer) {
		for i, fn := range []string{"b", "a", "a"} {
			root := tr.Start(nil, "invoke", 0)
			root.SetAttr("fn", fn)
			root.SetAttr("pu", "0")
			if i == 2 {
				root.SetAttr("error", "boom")
			}
			p.Sleep(ms(1 + i))
			root.Finish()
		}
	})
	a := Analyze(spans, Options{PUKind: func(pu int) string { return "CPU" }})
	rows := a.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].Fn != "a" || rows[1].Fn != "b" {
		t.Fatalf("rows unsorted: %q then %q", rows[0].Fn, rows[1].Fn)
	}
	if rows[0].Count != 2 || rows[0].Errors != 1 {
		t.Fatalf("row a = {n %d err %d}, want {2 1}", rows[0].Count, rows[0].Errors)
	}
	if rows[0].Total != ms(2)+ms(3) {
		t.Fatalf("row a total = %v, want 5ms", rows[0].Total)
	}
}
