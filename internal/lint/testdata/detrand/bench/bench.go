package bench

import "math/rand"

// Harness-side shuffling does not feed the simulation; bench is not a Sim
// layer and the global generator is allowed.
func Jitter() int { return rand.Intn(100) }
