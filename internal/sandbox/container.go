package sandbox

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/lang"
	"repro/internal/localos"
	"repro/internal/params"
	"repro/internal/sim"
)

// ContainerSandbox is one container-based sandbox on a CPU or DPU.
type ContainerSandbox struct {
	Spec  Spec
	State State
	Inst  *lang.Instance
	// Forked records whether the instance was produced by cfork (affects
	// per-request COW fault overhead, §6.6).
	Forked bool

	// Residual is the part of the spec's package manifest the zygote
	// ancestor this sandbox forked from had not imported; the runtime's
	// cold-start path pays for it after Start. Empty outside zygote mode.
	Residual lang.PkgSet
	// ZygoteDepth is the tree depth of the template the instance forked
	// from (0 = the generic root, i.e. flat cfork).
	ZygoteDepth int

	ns *localos.Namespace
	cg *localos.Cgroup
}

// ContainerRuntime is the runc-style sandbox runtime for general-purpose
// PUs, extended with container fork. It is always driven with one-sized
// vectors, mirroring the paper's modified Docker runc.
// FaultInjector lets a fault plan fail sandbox creations probabilistically.
// Declared consumer-side so sandbox need not import the faults package;
// *faults.Plan implements it.
type FaultInjector interface {
	CreateFault() error
}

// Counter is a monotonically increasing metric series handle.
type Counter interface {
	Inc()
}

// MetricSink is the runtime's consumer-side view of a metrics registry.
// Declared here so sandbox need not import the obs package (the same
// inversion as FaultInjector); molecule's observer adapter implements it
// over *obs.Observer.
type MetricSink interface {
	Counter(name, labelKey, labelValue string) Counter
}

type ContainerRuntime struct {
	OS *localos.OS

	// UseCfork starts sandboxes by forking a language template instead of
	// cold-booting a fresh runtime.
	UseCfork bool
	// CpusetMutexPatch applies the kernel cpuset patch (Fig 11a).
	CpusetMutexPatch bool
	// Metrics, when non-nil, counts fork/boot and container-pool events.
	// Nil (the default) adds no cost to the start path.
	Metrics MetricSink
	// Faults, when non-nil, can fail sandbox creation probabilistically.
	// Consulted before the container pool is touched, so an injected
	// failure never consumes a prepared container.
	Faults FaultInjector

	// UseZygoteTree replaces the single template per runtime with a fitted
	// zygote forest: Start forks from the deepest template whose package
	// set the spec's manifest covers. Requires UseCfork.
	UseZygoteTree bool
	// ZygoteCfg carries the forest's budget/fitter knobs; the zero value
	// is replaced by lang.DefaultZygoteTreeConfig at first use except for
	// BudgetPages, which is taken as-is (zero budget = root-only forest,
	// the flat-cfork arm of the comparison).
	ZygoteCfg lang.ZygoteTreeConfig

	templates map[lang.Kind]*lang.Instance
	forest    map[lang.Kind]*lang.ZygoteTree
	pool      []*preparedContainer // pre-initialized function containers
	sandboxes map[string]*ContainerSandbox
}

type preparedContainer struct {
	ns *localos.Namespace
	cg *localos.Cgroup
}

// count bumps a lifecycle counter labeled with the runtime's PU; a nil
// sink makes it free.
func (cr *ContainerRuntime) count(series string) {
	if cr.Metrics == nil {
		return
	}
	cr.Metrics.Counter(series, "pu", strconv.Itoa(int(cr.OS.PU.ID))).Inc()
}

// NewContainerRuntime returns a container runtime on the given OS.
func NewContainerRuntime(os *localos.OS) *ContainerRuntime {
	return &ContainerRuntime{
		OS:        os,
		templates: make(map[lang.Kind]*lang.Instance),
		sandboxes: make(map[string]*ContainerSandbox),
	}
}

// EnsureTemplate boots (once) the generic template container for a language
// runtime. Molecule prepares one template per language per PU (§4.2).
func (cr *ContainerRuntime) EnsureTemplate(p *sim.Proc, kind lang.Kind) (*lang.Instance, error) {
	if t, ok := cr.templates[kind]; ok {
		return t, nil
	}
	spec, err := lang.SpecFor(kind)
	if err != nil {
		return nil, err
	}
	t := lang.BootCold(p, cr.OS, spec, "template-"+string(kind), true)
	cr.templates[kind] = t
	return t, nil
}

// Template returns the booted template for kind, or nil.
func (cr *ContainerRuntime) Template(kind lang.Kind) *lang.Instance {
	return cr.templates[kind]
}

// EnsureForest boots (once) the zygote tree for a language runtime, rooted
// at the runtime's generic template.
func (cr *ContainerRuntime) EnsureForest(p *sim.Proc, kind lang.Kind) (*lang.ZygoteTree, error) {
	if t, ok := cr.forest[kind]; ok {
		return t, nil
	}
	root, err := cr.EnsureTemplate(p, kind)
	if err != nil {
		return nil, err
	}
	if cr.forest == nil {
		cr.forest = make(map[lang.Kind]*lang.ZygoteTree)
	}
	t := lang.NewZygoteTree(cr.OS, root, cr.ZygoteCfg)
	cr.forest[kind] = t
	return t, nil
}

// Forest returns the zygote tree for kind, or nil if none was booted.
func (cr *ContainerRuntime) Forest(kind lang.Kind) *lang.ZygoteTree {
	return cr.forest[kind]
}

// ResetForests retires every specialized zygote template (executor kill or
// PU crash). Generic root templates survive, matching the flat-template
// lifecycle; pinned nodes drain before exiting so refcounts release exactly
// once. A runtime with no forests is untouched.
func (cr *ContainerRuntime) ResetForests() {
	for _, kind := range []lang.Kind{lang.Python, lang.Node} {
		if t, ok := cr.forest[kind]; ok {
			t.Reset()
			cr.count("sandbox_zygote_resets_total")
		}
	}
}

// Prewarm pre-initializes n function containers off the request critical
// path (the Fig 11a "FuncContainer" optimization).
func (cr *ContainerRuntime) Prewarm(p *sim.Proc, n int) {
	for i := 0; i < n; i++ {
		p.Sleep(params.ContainerCreateTime)
		cr.pool = append(cr.pool, &preparedContainer{
			ns: cr.OS.NewNamespace("pool"),
			cg: cr.OS.NewCgroup("pool", 1, 1<<28),
		})
	}
}

// PoolSize reports the number of prepared containers available.
func (cr *ContainerRuntime) PoolSize() int { return len(cr.pool) }

// takeContainer pops a prepared container, or creates one on the critical
// path when the pool is empty.
func (cr *ContainerRuntime) takeContainer(p *sim.Proc, name string) (*localos.Namespace, *localos.Cgroup, bool) {
	if len(cr.pool) > 0 {
		c := cr.pool[len(cr.pool)-1]
		cr.pool = cr.pool[:len(cr.pool)-1]
		return c.ns, c.cg, true
	}
	p.Sleep(params.ContainerCreateTime)
	return cr.OS.NewNamespace(name), cr.OS.NewCgroup(name, 1, 1<<28), false
}

// Create implements Runtime. For containers, creation records the sandbox
// and reserves its function container (from the prepared pool when
// available).
func (cr *ContainerRuntime) Create(p *sim.Proc, specs []Spec) error {
	for _, spec := range specs {
		if _, exists := cr.sandboxes[spec.ID]; exists {
			return fmt.Errorf("sandbox: container %q already exists", spec.ID)
		}
		if spec.Lang == "" {
			return fmt.Errorf("sandbox: container %q has no language runtime", spec.ID)
		}
		if cr.Faults != nil {
			if err := cr.Faults.CreateFault(); err != nil {
				return fmt.Errorf("sandbox: create %q on PU %d: %w", spec.ID, cr.OS.PU.ID, err)
			}
		}
		ns, cg, pooled := cr.takeContainer(p, "fc-"+spec.ID)
		series := "sandbox_pool_misses_total"
		if pooled {
			series = "sandbox_pool_hits_total"
		}
		cr.count(series)
		cr.sandboxes[spec.ID] = &ContainerSandbox{
			Spec: spec, State: StateCreated, ns: ns, cg: cg,
		}
	}
	return nil
}

// Start implements Runtime: boot (or cfork) the function instance in each
// sandbox.
func (cr *ContainerRuntime) Start(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		sb, ok := cr.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no container %q", id)
		}
		if sb.State != StateCreated {
			return fmt.Errorf("sandbox: container %q is %v, want created", id, sb.State)
		}
		spec, err := lang.SpecFor(sb.Spec.Lang)
		if err != nil {
			return err
		}
		if cr.UseCfork && cr.UseZygoteTree {
			if err := cr.startZygote(p, sb); err != nil {
				return err
			}
		} else if cr.UseCfork {
			tmpl, err := cr.EnsureTemplate(p, sb.Spec.Lang)
			if err != nil {
				return err
			}
			inst, err := lang.Cfork(p, tmpl, sb.Spec.FuncID, lang.CforkOptions{
				PreparedContainer: true,
				CpusetMutexPatch:  cr.CpusetMutexPatch,
				Namespace:         sb.ns,
				Cgroup:            sb.cg,
			})
			if err != nil {
				return err
			}
			sb.Inst, sb.Forked = inst, true
			cr.count("sandbox_cfork_total")
		} else {
			inst := lang.BootCold(p, cr.OS, spec, "fn-"+sb.Spec.FuncID, false)
			inst.Proc.NS, inst.Proc.CG = sb.ns, sb.cg
			inst.LoadFunction(p, sb.Spec.FuncID)
			sb.Inst, sb.Forked = inst, false
			cr.count("sandbox_plain_boots_total")
		}
		sb.State = StateRunning
	}
	return nil
}

// startZygote forks the sandbox's instance from the deepest zygote
// template covering its package manifest. The node is pinned for the
// duration of the fork so a concurrent fitter prune (or forest reset)
// defers the template's exit instead of releasing its address space out
// from under the in-flight fork. The residual imports are recorded on the
// sandbox, not paid here: the caller charges them on its own span so
// attribution can split ancestor-resolution from residual-import time.
func (cr *ContainerRuntime) startZygote(p *sim.Proc, sb *ContainerSandbox) error {
	tree, err := cr.EnsureForest(p, sb.Spec.Lang)
	if err != nil {
		return err
	}
	node := tree.Resolve(sb.Spec.Pkgs)
	tree.Pin(node)
	inst, err := lang.Cfork(p, node.Inst, sb.Spec.FuncID, lang.CforkOptions{
		PreparedContainer: true,
		CpusetMutexPatch:  cr.CpusetMutexPatch,
		Namespace:         sb.ns,
		Cgroup:            sb.cg,
		// Zygote templates park merged between forks (SOCK-style).
		KeepTemplateMerged: true,
	})
	tree.Unpin(node)
	if err != nil {
		return err
	}
	sb.Inst, sb.Forked = inst, true
	sb.Residual = sb.Spec.Pkgs.Residual(node.Pkgs)
	sb.ZygoteDepth = node.Depth()
	cr.count("sandbox_cfork_total")
	cr.count("sandbox_zygote_forks_total")
	if node.ID != 0 {
		cr.count("sandbox_zygote_ancestor_hits_total")
	}
	tree.Observe(sb.Spec.Pkgs)
	if tree.NeedsFit() {
		tree.BeginFit()
		cr.OS.Env.Spawn("zygote-fit", func(bg *sim.Proc) {
			tree.Fit(bg)
		})
	}
	return nil
}

// Kill implements Runtime.
func (cr *ContainerRuntime) Kill(p *sim.Proc, ids []string, sig int) error {
	for _, id := range ids {
		sb, ok := cr.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no container %q", id)
		}
		if sb.State == StateRunning {
			sb.State = StateStopped
		}
	}
	return nil
}

// Delete implements Runtime: tear down the instance and release resources.
// Unlike runf, containers must be deleted explicitly to reclaim memory and
// cgroup resources (§3.5).
func (cr *ContainerRuntime) Delete(p *sim.Proc, ids []string) error {
	for _, id := range ids {
		sb, ok := cr.sandboxes[id]
		if !ok {
			return fmt.Errorf("sandbox: no container %q", id)
		}
		if sb.Inst != nil {
			sb.Inst.Exit()
		}
		sb.State = StateDeleted
		delete(cr.sandboxes, id)
	}
	return nil
}

// State implements Runtime.
func (cr *ContainerRuntime) State(ids []string) []Status {
	if ids == nil {
		for id := range cr.sandboxes {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic order for nil queries
	}
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		st := StateUnknown
		if sb, ok := cr.sandboxes[id]; ok {
			st = sb.State
		}
		out = append(out, Status{ID: id, State: st})
	}
	return out
}

// MemoryStats sums the memory footprint of the runtime's live pieces:
// running sandbox instances (count + PSS bytes) and template PSS bytes —
// the generic templates, or the whole zygote forest when one is booted
// (its root is the generic template, so the two never double-count).
// Iteration is sorted, keeping the float sums deterministic.
func (cr *ContainerRuntime) MemoryStats() (instances int, instPSS, tmplPSS float64) {
	ids := make([]string, 0, len(cr.sandboxes))
	for id := range cr.sandboxes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if sb := cr.sandboxes[id]; sb.Inst != nil {
			instances++
			instPSS += sb.Inst.PSSBytes()
		}
	}
	for _, kind := range []lang.Kind{lang.Python, lang.Node} {
		if t, ok := cr.forest[kind]; ok {
			tmplPSS += t.TemplatePSSPages() * params.PageSize
			continue
		}
		if tmpl, ok := cr.templates[kind]; ok {
			tmplPSS += tmpl.PSSBytes()
		}
	}
	return instances, instPSS, tmplPSS
}

// Sandbox returns the container sandbox with the given ID, or nil.
func (cr *ContainerRuntime) Sandbox(id string) *ContainerSandbox {
	return cr.sandboxes[id]
}

// Adopt registers an externally created sandbox (e.g. a snapshot-restored
// instance) so the standard lifecycle verbs apply to it.
func (cr *ContainerRuntime) Adopt(id string, sb *ContainerSandbox) {
	cr.sandboxes[id] = sb
}

var _ Runtime = (*ContainerRuntime)(nil)
