package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// A base layer importing a denied package, and importing a package nobody
// classified, are both violations.
func TestLayeringDenyAndUnknownImport(t *testing.T) {
	linttest.Run(t, lint.Layering,
		linttest.Package{Path: "repro/internal/obs", Dir: "testdata/layering/obs"},
		linttest.Package{Path: "repro/internal/newpkg", Dir: "testdata/layering/newpkg"},
		linttest.Package{Path: "repro/internal/sim", Dir: "testdata/layering/sim"})
}

// Imports must strictly descend the level order.
func TestLayeringLevelInversion(t *testing.T) {
	linttest.Run(t, lint.Layering,
		linttest.Package{Path: "repro/internal/xpu", Dir: "testdata/layering/xpu"},
		linttest.Package{Path: "repro/internal/hw", Dir: "testdata/layering/hw"})
}

// A package absent from the table is flagged at its package clause.
func TestLayeringUnknownPackage(t *testing.T) {
	linttest.Run(t, lint.Layering,
		linttest.Package{Path: "repro/internal/mystery", Dir: "testdata/layering/mystery"})
}

// A descending import (level 2 -> level 0) passes without diagnostics.
func TestLayeringDescendingImportAllowed(t *testing.T) {
	linttest.Run(t, lint.Layering,
		linttest.Package{Path: "repro/internal/sim", Dir: "testdata/layering/simstub"},
		linttest.Package{Path: "repro/internal/localos", Dir: "testdata/layering/localos"})
}
